#pragma once
// Op-graph invariant analyzer (model-invariant linter).
//
// The layer builders (parallel/layer_builder_*.cpp) implement the paper's
// Tables I / II / A2 op lists. This pass independently re-derives what each
// built op MUST look like from the conservation laws of the parallelization
// algebra and checks the construction against them:
//
//   op-sequence          the block emits the canonical op order
//   flop-invariance      splitting dimensions conserves total FLOPs:
//                        n1*n2 * per-GPU FLOPs == the serial (n1=n2=1) block
//   activation-term      each op stores exactly its table entry;
//   activation-sum       the per-block total partitions accordingly
//   collective-structure every op carries the collectives (type, group,
//                        count) its table row prescribes
//   collective-volume    with the re-derived Table I/II/A2 volumes
//   shape-chain          each op's output element count feeds the next op's
//                        input (collectives resize tensors in between)
//   fwd-bwd-comm         backward collectives are the conjugates of the
//                        forward ones (AG <-> RS, B <-> R) at equal volume
//                        (SUMMA: two conjugate pairs, 2x volume per group)
//   fwd-bwd-flops        backward/forward FLOP ratios stay in the ranges
//                        implied by the counting rules (warning only)
//   pp-boundary          the pipeline handoff is one (b, l, e)/(n1 n2)
//                        activation tensor
//
// The analyzer is pure and cheap (a few hundred float ops per layer); debug
// builds run it on every evaluator call, tests and `tfpe_cli lint` consume
// the structured diagnostics directly.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "comm/collective_model.hpp"
#include "core/cost_signature.hpp"
#include "hw/topology.hpp"
#include "model/transformer.hpp"
#include "parallel/layer_builder.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::analysis {

struct LintOptions {
  /// Per-rule enable/suppress switches, applied by every lint entry point.
  RuleConfig rules;
  /// Relative tolerance for the FLOP-invariance rule. The (2k-1) terms of
  /// split contraction dimensions legitimately deviate by ~(split-1)/(2k).
  double flop_rtol = 1e-2;
  /// Relative tolerance for byte-exact quantities (volumes, stored bytes).
  double bytes_rtol = 1e-9;
  /// Relative tolerance for element counts in the producer/consumer chain.
  double shape_rtol = 1e-6;
};

/// Lint a pre-built layer against the model/config that produced it.
LintReport lint_layer(const model::TransformerConfig& mdl,
                      const parallel::ParallelConfig& cfg,
                      std::int64_t local_microbatch,
                      const parallel::LayerCost& layer,
                      const LintOptions& opts = {});

/// Build the layer for (mdl, cfg) and lint it.
LintReport lint_config(const model::TransformerConfig& mdl,
                       const parallel::ParallelConfig& cfg,
                       std::int64_t local_microbatch,
                       const LintOptions& opts = {});

/// Debug-build hook: throws std::logic_error with the report summary when
/// the layer violates any error-severity invariant.
void assert_layer_invariants(const model::TransformerConfig& mdl,
                             const parallel::ParallelConfig& cfg,
                             std::int64_t local_microbatch,
                             const parallel::LayerCost& layer);

/// Lint a compiled CostSignature against the layer it was lowered from:
///   signature-nonnegative  every roofline operand, collective volume and
///                          memory term is >= 0 (panels >= 1)
///   signature-op-count     one SigOp per layer op
///   signature-flop-total   per-class FLOP sums reproduce the layer's
///                          fwd/bwd totals (and thereby inherit the
///                          analyzer's serial-block flop-invariance, which
///                          lint_layer checks on the same layer)
///   signature-hbm-total    per-class HBM byte sums reproduce the layer's
///   signature-comm-volume  per-group fwd/bwd collective volumes match the
///                          layer's fwd/bwd_comm_bytes extraction hooks
///   signature-stored-bytes stored activations match layer.stored_bytes()
///   signature-pp-boundary  the pipeline handoff volume is preserved
LintReport lint_signature(const model::TransformerConfig& mdl,
                          const parallel::ParallelConfig& cfg,
                          const core::CostSignature& sig,
                          const parallel::LayerCost& layer,
                          const LintOptions& opts = {});

/// Lint a fabric topology against the machine it claims to describe:
///   topology-depth        1 <= depth <= hw::Topology::kMaxDepth
///   topology-positive     every level has fan_in >= 1 (or <= 0 for
///                         unbounded), latency >= 0, bandwidth > 0,
///                         rails > 0, oversubscription >= 1
///   topology-fan-in       the fan-in product covers n_gpus: an error when
///                         the fabric is too small for the machine, a
///                         warning when it is oversized
///   topology-monotone-bw  per-member tier bandwidth (bandwidth * rails *
///                         efficiency aggregated per member) non-increasing
///                         outward — legal but almost always a spec typo,
///                         so warning severity
/// Empty topologies lint clean (they resolve to the canonical two-level
/// fabric); pass hw::SystemConfig::resolved_fabric() to lint what the
/// evaluator will actually walk.
LintReport lint_topology(const hw::Topology& topo, std::int64_t n_gpus,
                         const LintOptions& opts = {});

/// Lint a collective group placement:
///   placement-valid  size >= 1, 0 < nvs <= size, nvs divides size — the
///                    same predicate comm::collective_time enforces (a
///                    violating placement used to produce negative ring hop
///                    counts instead of a diagnostic)
LintReport lint_placement(const comm::GroupPlacement& g,
                          const LintOptions& opts = {});

/// Lint a placement against a concrete fabric: placement-valid plus
///   placement-leaf-fan-in  nvs must not exceed the fabric's bounded
///                          level-0 fan-in (a valid divisor that overfills
///                          the fast domain prices a fabric walk the
///                          machine cannot realize) — the same predicate
///                          the topology-aware comm::collective_time now
///                          enforces instead of deferring to bind time
LintReport lint_placement(const hw::Topology& topo,
                          const comm::GroupPlacement& g,
                          const LintOptions& opts = {});

}  // namespace tfpe::analysis
