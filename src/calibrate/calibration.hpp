#pragma once
// Efficiency calibration against measured iteration times.
//
// The paper derives its 70% network-efficiency derate from NCCL tests on
// Perlmutter and validates the model against Megatron-LM runs. This module
// closes that loop programmatically: given (configuration, measured
// iteration time) pairs from a real system, fit
//   * a compute-efficiency factor (achieved fraction of peak tensor-core /
//     vector FLOPs), and
//   * a bandwidth-efficiency factor (achieved fraction of peak NVS/IB
//     bandwidth)
// that minimize the RMS log error between model and measurement. The fit is
// a deterministic coarse-to-fine grid search (the surface is smooth and
// 2-D, so three refinement levels suffice).

#include <cstdint>
#include <vector>

#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::calibrate {

struct Observation {
  parallel::ParallelConfig cfg;
  double measured_seconds = 0;
};

struct EfficiencyFit {
  double compute_efficiency = 1.0;    ///< Applied to tensor+vector rates.
  double bandwidth_efficiency = 0.7;  ///< Replaces NetworkSpec::efficiency.
  double rms_pct_error = 0;           ///< Residual model-vs-measured error.
};

/// The system derated by a candidate (compute, bandwidth) efficiency pair.
hw::SystemConfig apply_efficiencies(hw::SystemConfig sys, double compute_eff,
                                    double bandwidth_eff);

/// RMS of the per-observation percentage errors of the derated model.
/// Observations whose configuration is infeasible under the derated system
/// are skipped; throws std::invalid_argument if none remain or any
/// measurement is non-positive.
double rms_pct_error(const model::TransformerConfig& mdl,
                     const hw::SystemConfig& sys, std::int64_t global_batch,
                     const std::vector<Observation>& obs, double compute_eff,
                     double bandwidth_eff);

/// Fit both efficiencies over [0.2, 1.0] x [0.2, 1.0].
EfficiencyFit fit_efficiencies(const model::TransformerConfig& mdl,
                               const hw::SystemConfig& sys,
                               std::int64_t global_batch,
                               const std::vector<Observation>& obs);

}  // namespace tfpe::calibrate
