#include "calibrate/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/evaluator.hpp"

namespace tfpe::calibrate {

hw::SystemConfig apply_efficiencies(hw::SystemConfig sys, double compute_eff,
                                    double bandwidth_eff) {
  sys.gpu.tensor_flops *= compute_eff;
  sys.gpu.vector_flops *= compute_eff;
  sys.net.efficiency = bandwidth_eff;
  return sys;
}

double rms_pct_error(const model::TransformerConfig& mdl,
                     const hw::SystemConfig& sys, std::int64_t global_batch,
                     const std::vector<Observation>& obs, double compute_eff,
                     double bandwidth_eff) {
  const hw::SystemConfig derated =
      apply_efficiencies(sys, compute_eff, bandwidth_eff);
  double sum_sq = 0;
  std::size_t counted = 0;
  for (const Observation& o : obs) {
    if (o.measured_seconds <= 0) {
      throw std::invalid_argument("rms_pct_error: non-positive measurement");
    }
    const core::EvalResult r = core::evaluate(mdl, derated, o.cfg, global_batch);
    if (!r.feasible) continue;
    const double pct = 100.0 * (r.iteration() - o.measured_seconds) /
                       o.measured_seconds;
    sum_sq += pct * pct;
    ++counted;
  }
  if (counted == 0) {
    throw std::invalid_argument("rms_pct_error: no feasible observations");
  }
  return std::sqrt(sum_sq / static_cast<double>(counted));
}

EfficiencyFit fit_efficiencies(const model::TransformerConfig& mdl,
                               const hw::SystemConfig& sys,
                               std::int64_t global_batch,
                               const std::vector<Observation>& obs) {
  if (obs.empty()) {
    throw std::invalid_argument("fit_efficiencies: no observations");
  }

  double best_ce = 1.0, best_be = 0.7;
  double best_err = std::numeric_limits<double>::infinity();
  auto consider = [&](double ce, double be) {
    const double err = rms_pct_error(mdl, sys, global_batch, obs, ce, be);
    if (err < best_err) {
      best_err = err;
      best_ce = ce;
      best_be = be;
    }
  };

  // Coarse grid, then two refinement levels around the incumbent.
  double lo_ce = 0.2, hi_ce = 1.0, lo_be = 0.2, hi_be = 1.0;
  for (int level = 0; level < 3; ++level) {
    const int steps = 9;
    for (int i = 0; i <= steps; ++i) {
      for (int j = 0; j <= steps; ++j) {
        const double ce = lo_ce + (hi_ce - lo_ce) * i / steps;
        const double be = lo_be + (hi_be - lo_be) * j / steps;
        consider(ce, be);
      }
    }
    const double span_ce = (hi_ce - lo_ce) / steps;
    const double span_be = (hi_be - lo_be) / steps;
    lo_ce = std::max(0.05, best_ce - span_ce);
    hi_ce = std::min(1.0, best_ce + span_ce);
    lo_be = std::max(0.05, best_be - span_be);
    hi_be = std::min(1.0, best_be + span_be);
  }

  EfficiencyFit fit;
  fit.compute_efficiency = best_ce;
  fit.bandwidth_efficiency = best_be;
  fit.rms_pct_error = best_err;
  return fit;
}

}  // namespace tfpe::calibrate
