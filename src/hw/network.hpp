#pragma once
// Dual-bandwidth network description (paper §III S2, Table A3).
//
// The system exposes two communication tiers:
//  * a fast domain (NVSwitch/NVLink) connecting `nvs_domain` GPUs with
//    (alpha_f, beta_f) latency/bandwidth, and
//  * a slow domain (InfiniBand / Slingshot) across fast domains with
//    (alpha_s, beta_s) per NIC rail; NCCL drives up to `nics_per_node`
//    rails concurrently, so a collective occupying g_nvs GPUs of a node can
//    sustain ~ g_nvs * (nics_per_node / nvs_domain) * beta_s across nodes.
// A measured bandwidth-efficiency factor (0.7 on Perlmutter) derates both.

#include <cstdint>
#include <string>

#include "hw/gpu.hpp"
#include "util/units.hpp"

namespace tfpe::hw {

struct NetworkSpec {
  BytesPerSec nvs_bandwidth;  ///< One-directional NVS bandwidth per GPU.
  Seconds nvs_latency;        ///< Fast-domain per-hop latency alpha_f.
  BytesPerSec ib_bandwidth;   ///< Per-NIC IB bandwidth beta_s.
  Seconds ib_latency;         ///< Slow-domain per-hop latency alpha_s.
  double nics_per_gpu = 1.0;  ///< NIC rails per GPU (nics_per_node / nvs_domain).
  double efficiency = 0.7;    ///< Achievable fraction of peak bandwidth.

  /// Allow NCCL-style tree algorithms in addition to rings: the collective
  /// model then takes the faster of ring and double-binary-tree time
  /// (latency O(log g) instead of O(g); extension, off by default to match
  /// the paper's ring-only model).
  bool enable_tree = false;

  /// Fat-tree oversubscription (extension; the paper assumes full
  /// bisection): collectives spanning more than `pod_size` GPUs see their
  /// slow-network bandwidth divided by `oversubscription`. pod_size = 0
  /// disables the effect.
  std::int64_t pod_size = 0;
  double oversubscription = 1.0;

  /// NCCL low-latency (LL) protocol (extension): small messages can use a
  /// protocol with ~5x lower per-hop latency at ~half the bandwidth; the
  /// model then takes min(simple, LL) per collective. Targets the
  /// small-volume regime the paper's Fig. A1 leaves unmodeled.
  bool enable_ll = false;
  double ll_latency_scale = 0.2;
  double ll_bandwidth_scale = 0.5;

  BytesPerSec effective_nvs_bandwidth() const {
    return nvs_bandwidth * efficiency;
  }
  BytesPerSec effective_ib_bandwidth_per_gpu() const {
    return ib_bandwidth * (nics_per_gpu * efficiency);
  }
};

/// Table A3 network presets, matched to the GPU generation (NVLink gen and
/// ConnectX-6/7/8 respectively).
NetworkSpec network_preset(GpuGeneration gen);

}  // namespace tfpe::hw
