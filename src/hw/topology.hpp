#pragma once
// Hierarchical fabric description: an arbitrary-depth generalization of the
// paper's two-level NVS+IB network (§III S2). Level 0 is the innermost
// (fastest) tier — the NVSwitch domain; each further level is a switching
// tier that aggregates `fan_in` units of the level below it (nodes into
// leaf switches, leaves into spines, ...). Each level carries its own
// (alpha, beta) latency/bandwidth pair, rail count and an optional
// pod-size/oversubscription gate, so three-tier fat-trees, rail-optimized
// leaf/spine fabrics and oversubscribed spines are all expressible.
//
// The canonical two-level preset built from a NetworkSpec reproduces the
// legacy comm/collective_model results BITWISE (guarded by
// tests/test_topology.cpp); extra levels and the hierarchical collective
// algorithm are strict extensions.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/network.hpp"
#include "util/units.hpp"

namespace tfpe::hw {

/// One switching tier of the fabric.
struct FabricLevel {
  std::string name;         ///< "nvs", "ib", "leaf", "spine", ...
  /// Units of the level below aggregated into one unit of this level
  /// (level 0: GPUs per fast domain). <= 0 means unbounded — the level can
  /// grow to cover any machine size.
  std::int64_t fan_in = 1;
  Seconds latency;          ///< Per-hop latency alpha at this level.
  /// Per-rail one-directional bandwidth beta at this level (level 0: per
  /// GPU; outer levels: per NIC rail).
  BytesPerSec bandwidth;
  double rails = 1.0;       ///< Rails per member driving this level.
  /// Oversubscription gate: groups spanning more than `pod_size` GPUs see
  /// this level's bandwidth divided by `oversubscription`. pod_size = 0
  /// disables the effect (full bisection).
  std::int64_t pod_size = 0;
  double oversubscription = 1.0;
};

/// The whole fabric plus the collective-model knobs shared across levels.
struct Topology {
  /// Placements carry a fixed-size per-level occupancy vector (no heap
  /// allocation in the timing hot path), which caps the fabric depth.
  static constexpr std::size_t kMaxDepth = 6;

  std::vector<FabricLevel> levels;  ///< Innermost (fastest) first.
  double efficiency = 0.7;          ///< Achievable fraction of peak bandwidth.

  // Collective-algorithm knobs, mirroring NetworkSpec (same defaults).
  bool enable_tree = false;
  bool enable_ll = false;
  double ll_latency_scale = 0.2;
  double ll_bandwidth_scale = 0.5;
  /// Allow the hierarchical two-phase reduce-scatter/all-gather algorithm:
  /// collectives then take min(ring, hierarchical). Off by default — the
  /// flat ring is the paper's model and the bitwise-preservation baseline.
  bool enable_hierarchical = false;

  std::size_t depth() const { return levels.size(); }
  bool empty() const { return levels.empty(); }

  /// GPUs per unit of `level` (product of fan-ins up to and including it);
  /// 0 when any contributing fan-in is unbounded.
  std::int64_t capacity(std::size_t level) const;
  /// GPUs the whole fabric can host (capacity of the outermost level).
  std::int64_t total_capacity() const;

  /// Fan-in of the innermost (fast-domain) level; 0 when the fabric is
  /// empty or the level is unbounded. A collective placement's `nvs` must
  /// not exceed this — a wider span cannot stay inside the fast domain.
  std::int64_t leaf_fan_in() const {
    if (levels.empty() || levels[0].fan_in <= 0) return 0;
    return levels[0].fan_in;
  }

  std::string describe() const;  ///< e.g. "nvs8 > leaf4 > spine16(os4)"
};

/// The paper's two-level NVS+IB preset: level 0 is the fast domain of
/// `nvs_domain` GPUs, level 1 the IB network with `net.nics_per_gpu` rails.
/// Copies every collective-model knob from `net`; walking this fabric
/// reproduces the legacy closed-form model bitwise. `n_gpus` sizes the top
/// fan-in (0 = unbounded).
Topology two_level_topology(const NetworkSpec& net, std::int64_t nvs_domain,
                            std::int64_t n_gpus);

/// Three-level leaf/spine fat-tree: fast domains under leaf switches of
/// `leaf_size` GPUs, leaves under a spine tier with the given
/// oversubscription (pod_size = leaf_size gates it, 1.0 = full bisection).
/// Leaf and spine reuse the IB (alpha, beta) pair — the degenerate preset
/// leaf_size == nvs_domain, oversubscription == 1 collapses bitwise onto
/// the two-level fabric.
Topology leaf_spine_topology(const NetworkSpec& net, std::int64_t nvs_domain,
                             std::int64_t leaf_size, std::int64_t n_gpus,
                             double oversubscription);

/// Rail-optimized leaf/spine: every NIC rail keeps its full bandwidth
/// across the spine (no oversubscription), at twice the IB per-hop latency
/// for the extra switch traversal. Models the rail-optimized fabrics of
/// large Ethernet/IB clusters.
Topology rail_optimized_topology(const NetworkSpec& net,
                                 std::int64_t nvs_domain,
                                 std::int64_t leaf_size, std::int64_t n_gpus);

}  // namespace tfpe::hw
