#include "hw/topology.hpp"

#include <stdexcept>

namespace tfpe::hw {

std::int64_t Topology::capacity(std::size_t level) const {
  std::int64_t cap = 1;
  for (std::size_t i = 0; i <= level && i < levels.size(); ++i) {
    if (levels[i].fan_in <= 0) return 0;  // unbounded
    cap *= levels[i].fan_in;
  }
  return cap;
}

std::int64_t Topology::total_capacity() const {
  return levels.empty() ? 0 : capacity(levels.size() - 1);
}

std::string Topology::describe() const {
  std::string out;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i) out += " > ";
    out += levels[i].name + std::to_string(levels[i].fan_in);
    if (levels[i].oversubscription > 1.0 && levels[i].pod_size > 0) {
      out += "(os" +
             std::to_string(static_cast<long long>(levels[i].oversubscription)) +
             ")";
    }
  }
  return out;
}

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return b > 0 ? (a + b - 1) / b : 0;
}

FabricLevel nvs_level(const NetworkSpec& net, std::int64_t nvs_domain) {
  FabricLevel l;
  l.name = "nvs";
  l.fan_in = nvs_domain;
  l.latency = net.nvs_latency;
  l.bandwidth = net.nvs_bandwidth;
  l.rails = 1.0;
  return l;
}

FabricLevel ib_level(const NetworkSpec& net, std::int64_t fan_in) {
  FabricLevel l;
  l.name = "ib";
  l.fan_in = fan_in;
  l.latency = net.ib_latency;
  l.bandwidth = net.ib_bandwidth;
  l.rails = net.nics_per_gpu;
  return l;
}

void copy_knobs(const NetworkSpec& net, Topology& t) {
  t.efficiency = net.efficiency;
  t.enable_tree = net.enable_tree;
  t.enable_ll = net.enable_ll;
  t.ll_latency_scale = net.ll_latency_scale;
  t.ll_bandwidth_scale = net.ll_bandwidth_scale;
}

}  // namespace

Topology two_level_topology(const NetworkSpec& net, std::int64_t nvs_domain,
                            std::int64_t n_gpus) {
  if (nvs_domain < 0) {
    throw std::invalid_argument("two_level_topology: nvs_domain < 0");
  }
  Topology t;
  copy_knobs(net, t);
  t.levels.push_back(nvs_level(net, nvs_domain));
  FabricLevel ib = ib_level(net, n_gpus > 0 ? ceil_div(n_gpus, nvs_domain) : 0);
  ib.pod_size = net.pod_size;
  ib.oversubscription = net.oversubscription;
  t.levels.push_back(std::move(ib));
  return t;
}

Topology leaf_spine_topology(const NetworkSpec& net, std::int64_t nvs_domain,
                             std::int64_t leaf_size, std::int64_t n_gpus,
                             double oversubscription) {
  if (leaf_size < nvs_domain || nvs_domain <= 0 ||
      leaf_size % nvs_domain != 0) {
    throw std::invalid_argument(
        "leaf_spine_topology: leaf_size must be a multiple of nvs_domain");
  }
  Topology t;
  copy_knobs(net, t);
  t.levels.push_back(nvs_level(net, nvs_domain));

  FabricLevel leaf = ib_level(net, leaf_size / nvs_domain);
  leaf.name = "leaf";
  t.levels.push_back(std::move(leaf));

  FabricLevel spine = ib_level(net, n_gpus > 0 ? ceil_div(n_gpus, leaf_size) : 0);
  spine.name = "spine";
  if (oversubscription > 1.0) {
    spine.pod_size = leaf_size;
    spine.oversubscription = oversubscription;
  }
  t.levels.push_back(std::move(spine));
  return t;
}

Topology rail_optimized_topology(const NetworkSpec& net,
                                 std::int64_t nvs_domain,
                                 std::int64_t leaf_size, std::int64_t n_gpus) {
  Topology t = leaf_spine_topology(net, nvs_domain, leaf_size, n_gpus, 1.0);
  // Rail-optimized: each rail lands on its own leaf switch, so spine
  // crossings keep the full per-rail bandwidth but pay one extra switch
  // traversal of latency.
  t.levels[2].name = "spine-rail";
  t.levels[2].latency = net.ib_latency * 2.0;
  return t;
}

}  // namespace tfpe::hw
