#pragma once
// GPU accelerator description (paper Table A3).
//
// All fields are SI units: FLOP/s, bytes/s, bytes, seconds. The paper's
// roofline (S2) consumes tensor-core FLOP rate for matrix ops, vector FLOP
// rate for element-wise ops, HBM bandwidth for memory-bound time, capacity
// for feasibility, and a fixed "FLOPs latency" t_sf modeling small-matrix
// inefficiency (first-order model from the CUDA matmul guide).

#include <string>

namespace tfpe::hw {

struct GpuSpec {
  std::string name;
  double tensor_flops = 0;     ///< Peak FP16 tensor-core rate [FLOP/s].
  double vector_flops = 0;     ///< Peak FP16 vector rate [FLOP/s].
  double flops_latency = 0;    ///< Kernel launch / small-matmul latency t_sf [s].
  double hbm_bandwidth = 0;    ///< Peak HBM bandwidth [bytes/s].
  double hbm_capacity = 0;     ///< HBM capacity [bytes].
  double tdp_watts = 0;        ///< Board power, for energy estimates.

  /// Returns a copy with scaled memory system (used by Figs. A5/A6 sweeps).
  GpuSpec with_memory(double capacity_bytes, double bandwidth_bytes_per_s) const;
  /// Returns a copy with scaled compute rates (used by Fig. A5 sweep).
  GpuSpec with_compute(double tensor, double vector) const;
};

enum class GpuGeneration { A100, H200, B200 };

/// Table A3 presets.
GpuSpec a100();
GpuSpec h200();
GpuSpec b200();

/// H100-SXM (not in the paper's Table A3; public datasheet values, provided
/// for planning on current deployments).
GpuSpec h100();
GpuSpec gpu_preset(GpuGeneration gen);
std::string to_string(GpuGeneration gen);

}  // namespace tfpe::hw
