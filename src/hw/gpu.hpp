#pragma once
// GPU accelerator description (paper Table A3).
//
// All fields are strongly-typed SI units: FLOP/s, bytes/s, bytes, seconds
// (util/units.hpp). The paper's roofline (S2) consumes tensor-core FLOP rate
// for matrix ops, vector FLOP rate for element-wise ops, HBM bandwidth for
// memory-bound time, capacity for feasibility, and a fixed "FLOPs latency"
// t_sf modeling small-matrix inefficiency (first-order model from the CUDA
// matmul guide).

#include <string>

#include "util/units.hpp"

namespace tfpe::hw {

struct GpuSpec {
  std::string name;
  FlopsPerSec tensor_flops;    ///< Peak FP16 tensor-core rate.
  FlopsPerSec vector_flops;    ///< Peak FP16 vector rate.
  Seconds flops_latency;       ///< Kernel launch / small-matmul latency t_sf.
  BytesPerSec hbm_bandwidth;   ///< Peak HBM bandwidth.
  Bytes hbm_capacity;          ///< HBM capacity.
  double tdp_watts = 0;        ///< Board power, for energy estimates.

  /// Returns a copy with scaled memory system (used by Figs. A5/A6 sweeps).
  GpuSpec with_memory(Bytes capacity, BytesPerSec bandwidth) const;
  /// Returns a copy with scaled compute rates (used by Fig. A5 sweep).
  GpuSpec with_compute(FlopsPerSec tensor, FlopsPerSec vector) const;
};

enum class GpuGeneration { A100, H200, B200 };

/// Table A3 presets.
GpuSpec a100();
GpuSpec h200();
GpuSpec b200();

/// H100-SXM (not in the paper's Table A3; public datasheet values, provided
/// for planning on current deployments).
GpuSpec h100();
GpuSpec gpu_preset(GpuGeneration gen);
std::string to_string(GpuGeneration gen);

}  // namespace tfpe::hw
