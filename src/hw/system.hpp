#pragma once
// A full system description: GPU type, network tiers, fast-domain (NVS) size
// and total GPU count. This is the "system" input of the performance model.

#include <cstdint>
#include <string>

#include "hw/gpu.hpp"
#include "hw/network.hpp"
#include "hw/topology.hpp"

namespace tfpe::hw {

struct SystemConfig {
  GpuSpec gpu;
  NetworkSpec net;
  std::int64_t nvs_domain = 8;  ///< GPUs per NVSwitch domain (node).
  std::int64_t n_gpus = 0;      ///< Total GPUs available.

  /// Host (CPU) link per GPU, used by the activation-offload extension
  /// (paper §V limitations: "offloading to the CPU ... may be very useful
  /// for large sequences"). Defaults to a PCIe Gen5 x16-class link.
  BytesPerSec host_bandwidth{64e9};

  /// Explicit fabric description. Empty (the default) means the canonical
  /// two-level NVS+IB fabric derived from `net`/`nvs_domain` — bitwise
  /// identical to the legacy closed-form model. Attach a deeper fabric
  /// (leaf_spine_topology, rail_optimized_topology, a [topology] config
  /// block) to model three-tier or oversubscribed networks.
  Topology fabric;

  /// The fabric the evaluator times against: `fabric` when set, otherwise
  /// the derived two-level preset.
  Topology resolved_fabric() const;

  std::string describe() const;
};

/// Build a system from presets: `gen` GPUs in NVS domains of `nvs_domain`,
/// `n_gpus` total.
SystemConfig make_system(GpuGeneration gen, std::int64_t nvs_domain,
                         std::int64_t n_gpus);

/// Perlmutter-like system used by the paper's empirical validation: A100
/// GPUs, 4 per node, all-to-all NVLink inside the node, 4 Slingshot NICs.
SystemConfig perlmutter(std::int64_t n_gpus);

}  // namespace tfpe::hw
