#include "hw/gpu.hpp"

namespace tfpe::hw {

using util::kGB;
using util::kTFLOPs;

GpuSpec GpuSpec::with_memory(Bytes capacity, BytesPerSec bandwidth) const {
  GpuSpec out = *this;
  out.hbm_capacity = capacity;
  out.hbm_bandwidth = bandwidth;
  return out;
}

GpuSpec GpuSpec::with_compute(FlopsPerSec tensor, FlopsPerSec vector) const {
  GpuSpec out = *this;
  out.tensor_flops = tensor;
  out.vector_flops = vector;
  return out;
}

GpuSpec a100() {
  return GpuSpec{
      .name = "A100",
      .tensor_flops = FlopsPerSec(312 * kTFLOPs),
      .vector_flops = FlopsPerSec(78 * kTFLOPs),
      .flops_latency = Seconds(2e-5),
      .hbm_bandwidth = BytesPerSec(1555 * kGB),
      .hbm_capacity = Bytes(80 * kGB),
      .tdp_watts = 400,
  };
}

GpuSpec h200() {
  return GpuSpec{
      .name = "H200",
      .tensor_flops = FlopsPerSec(990 * kTFLOPs),
      .vector_flops = FlopsPerSec(134 * kTFLOPs),
      .flops_latency = Seconds(2e-5),
      .hbm_bandwidth = BytesPerSec(4800 * kGB),
      .hbm_capacity = Bytes(141 * kGB),
      .tdp_watts = 700,
  };
}

GpuSpec b200() {
  return GpuSpec{
      .name = "B200",
      .tensor_flops = FlopsPerSec(2500 * kTFLOPs),
      .vector_flops = FlopsPerSec(339 * kTFLOPs),
      .flops_latency = Seconds(2e-5),
      .hbm_bandwidth = BytesPerSec(8000 * kGB),
      .hbm_capacity = Bytes(192 * kGB),
      .tdp_watts = 1000,
  };
}

GpuSpec h100() {
  return GpuSpec{
      .name = "H100",
      .tensor_flops = FlopsPerSec(990 * kTFLOPs),
      .vector_flops = FlopsPerSec(134 * kTFLOPs),
      .flops_latency = Seconds(2e-5),
      .hbm_bandwidth = BytesPerSec(3350 * kGB),
      .hbm_capacity = Bytes(80 * kGB),
      .tdp_watts = 700,
  };
}

GpuSpec gpu_preset(GpuGeneration gen) {
  switch (gen) {
    case GpuGeneration::A100: return a100();
    case GpuGeneration::H200: return h200();
    case GpuGeneration::B200: return b200();
  }
  return b200();
}

std::string to_string(GpuGeneration gen) {
  switch (gen) {
    case GpuGeneration::A100: return "A100";
    case GpuGeneration::H200: return "H200";
    case GpuGeneration::B200: return "B200";
  }
  return "?";
}

}  // namespace tfpe::hw
