#include "hw/network.hpp"

#include "util/units.hpp"

namespace tfpe::hw {

using util::kGB;

NetworkSpec network_preset(GpuGeneration gen) {
  NetworkSpec net;
  net.nvs_latency = 2.5e-6;
  net.ib_latency = 5e-6;
  net.nics_per_gpu = 1.0;
  net.efficiency = 0.7;
  switch (gen) {
    case GpuGeneration::A100:
      net.nvs_bandwidth = 300 * kGB;
      net.ib_bandwidth = 25 * kGB;
      break;
    case GpuGeneration::H200:
      net.nvs_bandwidth = 450 * kGB;
      net.ib_bandwidth = 50 * kGB;
      break;
    case GpuGeneration::B200:
      net.nvs_bandwidth = 900 * kGB;
      net.ib_bandwidth = 100 * kGB;
      break;
  }
  return net;
}

}  // namespace tfpe::hw
