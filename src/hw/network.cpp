#include "hw/network.hpp"

namespace tfpe::hw {

using util::kGB;

NetworkSpec network_preset(GpuGeneration gen) {
  NetworkSpec net;
  net.nvs_latency = Seconds(2.5e-6);
  net.ib_latency = Seconds(5e-6);
  net.nics_per_gpu = 1.0;
  net.efficiency = 0.7;
  switch (gen) {
    case GpuGeneration::A100:
      net.nvs_bandwidth = BytesPerSec(300 * kGB);
      net.ib_bandwidth = BytesPerSec(25 * kGB);
      break;
    case GpuGeneration::H200:
      net.nvs_bandwidth = BytesPerSec(450 * kGB);
      net.ib_bandwidth = BytesPerSec(50 * kGB);
      break;
    case GpuGeneration::B200:
      net.nvs_bandwidth = BytesPerSec(900 * kGB);
      net.ib_bandwidth = BytesPerSec(100 * kGB);
      break;
  }
  return net;
}

}  // namespace tfpe::hw
