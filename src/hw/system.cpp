#include "hw/system.hpp"

#include <sstream>

#include "util/units.hpp"

namespace tfpe::hw {

Topology SystemConfig::resolved_fabric() const {
  if (!fabric.empty()) return fabric;
  return two_level_topology(net, nvs_domain, n_gpus);
}

std::string SystemConfig::describe() const {
  std::ostringstream os;
  os << n_gpus << "x " << gpu.name << " (NVS domain " << nvs_domain << ", "
     << util::format_bandwidth(net.nvs_bandwidth) << " NVS, "
     << util::format_bandwidth(net.ib_bandwidth) << "/NIC IB)";
  if (!fabric.empty()) os << " [" << fabric.describe() << "]";
  return os.str();
}

SystemConfig make_system(GpuGeneration gen, std::int64_t nvs_domain,
                         std::int64_t n_gpus) {
  SystemConfig sys;
  sys.gpu = gpu_preset(gen);
  sys.net = network_preset(gen);
  sys.nvs_domain = nvs_domain;
  sys.n_gpus = n_gpus;
  return sys;
}

SystemConfig perlmutter(std::int64_t n_gpus) {
  SystemConfig sys;
  sys.gpu = a100();
  sys.net = network_preset(GpuGeneration::A100);
  // 4 NVLink-connected A100s per node, 4 Slingshot NICs of ~25 GB/s each.
  sys.nvs_domain = 4;
  sys.net.nics_per_gpu = 1.0;
  sys.n_gpus = n_gpus;
  return sys;
}

}  // namespace tfpe::hw
