#include "report/op_report.hpp"

#include <stdexcept>

#include "parallel/layer_builder.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace tfpe::report {

void print_op_report(std::ostream& os, const model::TransformerConfig& mdl,
                     const hw::SystemConfig& sys,
                     const parallel::ParallelConfig& cfg,
                     std::int64_t global_batch) {
  if (auto why = cfg.invalid_reason(mdl, sys, global_batch)) {
    throw std::invalid_argument("print_op_report: " + *why);
  }
  const parallel::LayerCost layer =
      parallel::build_layer(mdl, cfg, cfg.local_microbatch(global_batch));

  util::TextTable t;
  t.set_header({"op", "unit", "FLOPs", "HBM bytes", "AI [FLOP/B]", "fwd",
                "bwd", "comm", "bound", "stored"});
  Seconds total_fwd, total_bwd, total_comm;
  for (const auto& op : layer.ops) {
    const core::OpTime f = core::op_time(op, false, sys, cfg);
    const core::OpTime b = core::op_time(op, true, sys, cfg);
    const double ai = op.fwd_bytes > Bytes(0)
                          ? op.fwd_flops.value() / op.fwd_bytes.value()
                          : 0.0;
    const Seconds fwd = f.compute + f.memory;
    const Seconds bwd = b.compute + b.memory;
    total_fwd += fwd;
    total_bwd += bwd;
    total_comm += f.comm + b.comm;
    t.add_row({op.name, ops::to_string(op.unit), util::format_flops(op.fwd_flops),
               util::format_bytes(op.fwd_bytes), util::format_fixed(ai, 1),
               util::format_time(fwd), util::format_time(bwd),
               util::format_time(f.comm + b.comm),
               f.compute > Seconds(0) ? "compute" : "memory",
               util::format_bytes(op.stored_bytes)});
  }
  os << "Per-op roofline for " << mdl.name << " | " << cfg.describe()
     << " | local microbatch " << cfg.local_microbatch(global_batch) << "\n";
  t.print(os);
  os << "block totals: fwd " << util::format_time(total_fwd) << ", bwd "
     << util::format_time(total_bwd) << ", exposed comm "
     << util::format_time(total_comm) << ", stored "
     << util::format_bytes(layer.stored_bytes()) << ", weights "
     << util::format_fixed(layer.weight_params / 1e6, 1) << "M params\n";
}

}  // namespace tfpe::report
