#include "report/breakdown_report.hpp"

#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace tfpe::report {

namespace {

std::string pct(double part, double total) {
  if (total <= 0) return "-";
  return util::format_fixed(100.0 * part / total, 1);
}

std::string num(std::int64_t v) { return std::to_string(v); }

}  // namespace

void print_config_panel(std::ostream& os,
                        const std::vector<LabeledResult>& results) {
  util::TextTable t;
  t.set_header({"config", "strategy", "DP", "TP n1", "TP n2", "PP", "m", "nb",
                "nvs(1,2,p,d)", "HBM used"});
  for (const auto& [label, r] : results) {
    const auto& c = r.cfg;
    t.add_row({label, parallel::to_string(c.strategy), num(c.nd), num(c.n1),
               num(c.n2), num(c.np), num(c.microbatches), num(c.nb),
               // Chain starts from std::string so concatenation appends; the
               // `"(" + str` overload inlines string::insert, which trips a
               // GCC 12 -Wrestrict false positive (PR105651) under -Werror.
               std::string("(") + num(c.nvs1) + "," + num(c.nvs2) + "," +
                   num(c.nvsp) + "," + num(c.nvsd) + ")",
               r.feasible ? util::format_bytes(r.mem.total())
                          : "infeasible: " + r.reason});
  }
  t.print(os);
}

void print_time_panel(std::ostream& os,
                      const std::vector<LabeledResult>& results) {
  util::TextTable t;
  t.set_header({"config", "compute%", "mem%", "TPcomm%", "DPcomm%", "PPcomm%",
                "bubble%", "opt%", "iter time"});
  for (const auto& [label, r] : results) {
    if (!r.feasible) {
      t.add_row({label, "-", "-", "-", "-", "-", "-", "-",
                 "infeasible: " + r.reason});
      continue;
    }
    const double total = r.iteration();
    t.add_row({label, pct(r.time.compute, total), pct(r.time.memory, total),
               pct(r.time.tp_comm, total), pct(r.time.dp_comm, total),
               pct(r.time.pp_comm, total), pct(r.time.bubble, total),
               pct(r.time.optimizer, total), util::format_time(total)});
  }
  t.print(os);
}

void print_panels(std::ostream& os, const std::string& caption,
                  const std::vector<LabeledResult>& results) {
  os << "== " << caption << " ==\n";
  os << "-- PARALLELIZATION CONFIGURATION --\n";
  print_config_panel(os, results);
  os << "-- TIME (fraction of iteration) --\n";
  print_time_panel(os, results);
  os << '\n';
}

void write_results_csv(const std::string& path,
                       const std::vector<LabeledResult>& results) {
  util::CsvWriter csv(path);
  csv.write_header({"label", "strategy", "nd", "n1", "n2", "np", "m", "nb",
                    "nvs1", "nvs2", "nvsp", "nvsd", "feasible", "hbm_bytes",
                    "iter_s", "compute_s", "memory_s", "tp_comm_s", "dp_comm_s",
                    "pp_comm_s", "bubble_s", "optimizer_s"});
  for (const auto& [label, r] : results) {
    const auto& c = r.cfg;
    csv.write_row(std::vector<std::string>{
        label, parallel::to_string(c.strategy), num(c.nd), num(c.n1), num(c.n2),
        num(c.np), num(c.microbatches), num(c.nb), num(c.nvs1), num(c.nvs2),
        num(c.nvsp), num(c.nvsd), r.feasible ? "1" : "0",
        util::format_fixed(r.mem.total().value(), 0),
        util::format_fixed(r.feasible ? r.iteration() : 0.0, 6),
        util::format_fixed(r.time.compute, 6), util::format_fixed(r.time.memory, 6),
        util::format_fixed(r.time.tp_comm, 6), util::format_fixed(r.time.dp_comm, 6),
        util::format_fixed(r.time.pp_comm, 6), util::format_fixed(r.time.bubble, 6),
        util::format_fixed(r.time.optimizer, 6)});
  }
}

}  // namespace tfpe::report
