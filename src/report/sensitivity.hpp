#pragma once
// Hardware-sensitivity analysis: finite-difference elasticities of the
// optimal iteration time with respect to each hardware parameter. The
// quantitative backing for the paper's Q3 discussion ("FLOP rates are the
// primary factor ... bandwidth/capacity having different roles for the
// different models"): an elasticity of -0.8 on the tensor-core rate means a
// 1% faster tensor core buys ~0.8% faster training.
//
// Because the optimal configuration is re-searched at each perturbed
// design point, the elasticities include re-parallelization effects, not
// just local roofline slopes.

#include <string>
#include <vector>

#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::report {

struct Sensitivity {
  std::string parameter;
  double elasticity = 0;  ///< d log(time) / d log(parameter).
};

/// Elasticities for {tensor FLOPs, vector FLOPs, HBM bandwidth, HBM
/// capacity, NVS bandwidth, IB bandwidth}, each via a symmetric +/- `step`
/// relative perturbation with a full configuration re-search.
std::vector<Sensitivity> hardware_sensitivities(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    parallel::TpStrategy strategy, std::int64_t global_batch,
    double step = 0.25);

}  // namespace tfpe::report
