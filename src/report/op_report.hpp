#pragma once
// Per-operation roofline report: for one configuration, the S1 counts and
// S2 times of every op in a transformer block — FLOPs, HBM bytes, arithmetic
// intensity, forward/backward time, exposed communication and whether the
// op is compute- or memory-bound. The op-level view behind the aggregate
// time panels.

#include <ostream>

#include "core/evaluator.hpp"
#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::report {

/// Print the per-op table for one block of `mdl` under `cfg` with the given
/// global batch. Throws std::invalid_argument for invalid configurations.
void print_op_report(std::ostream& os, const model::TransformerConfig& mdl,
                     const hw::SystemConfig& sys,
                     const parallel::ParallelConfig& cfg,
                     std::int64_t global_batch);

}  // namespace tfpe::report
