#pragma once
// Paper-style result presentation: the PARALLELIZATION CONFIGURATION panel
// (grid factors, microbatches, HBM GB) and the TIME panel (per-iteration
// breakdown in percent plus the absolute total), matching the two-panel
// layout of Figs. 1-4.

#include <ostream>
#include <string>
#include <vector>

#include "core/evaluator.hpp"

namespace tfpe::report {

struct LabeledResult {
  std::string label;
  core::EvalResult result;
};

/// Top panel: DP/TP/PP/microbatch allocation and memory per configuration.
void print_config_panel(std::ostream& os,
                        const std::vector<LabeledResult>& results);

/// Bottom panel: % of iteration time in compute / memory / TP / DP / PP /
/// bubble / optimizer, plus total seconds per iteration.
void print_time_panel(std::ostream& os,
                      const std::vector<LabeledResult>& results);

/// Both panels with a caption.
void print_panels(std::ostream& os, const std::string& caption,
                  const std::vector<LabeledResult>& results);

/// CSV mirror of both panels (one row per configuration).
void write_results_csv(const std::string& path,
                       const std::vector<LabeledResult>& results);

}  // namespace tfpe::report
