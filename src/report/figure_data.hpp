#pragma once
// Shared helpers for the figure-reproduction benches: scale ranges, optimal
// configurations per GPU count, and strategy comparisons.

#include <cstdint>
#include <vector>

#include "core/evaluator.hpp"
#include "core/training_estimate.hpp"
#include "hw/system.hpp"
#include "report/breakdown_report.hpp"
#include "search/search.hpp"

namespace tfpe::report {

/// Powers of two in [lo, hi].
std::vector<std::int64_t> pow2_range(std::int64_t lo, std::int64_t hi);

/// Run the full S3 search for `strategy` on `n` GPUs of the given system.
core::EvalResult optimal_at_scale(const model::TransformerConfig& mdl,
                                  hw::SystemConfig sys,
                                  parallel::TpStrategy strategy,
                                  std::int64_t global_batch, std::int64_t n);

/// Optimal configurations across a strong-scaling sweep (Figs. 4, A3).
std::vector<LabeledResult> scaling_sweep(const model::TransformerConfig& mdl,
                                         const hw::SystemConfig& sys,
                                         parallel::TpStrategy strategy,
                                         std::int64_t global_batch,
                                         const std::vector<std::int64_t>& scales);

}  // namespace tfpe::report
