#include "report/sensitivity.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "search/search.hpp"

namespace tfpe::report {

namespace {

double optimal_time(const model::TransformerConfig& mdl,
                    const hw::SystemConfig& sys,
                    parallel::TpStrategy strategy, std::int64_t b) {
  search::SearchOptions opts;
  opts.strategy = strategy;
  opts.global_batch = b;
  const auto r = search::find_optimal(mdl, sys, opts);
  if (!r.best.feasible) return std::nan("");
  return r.best.iteration();
}

}  // namespace

std::vector<Sensitivity> hardware_sensitivities(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    parallel::TpStrategy strategy, std::int64_t global_batch, double step) {
  if (step <= 0 || step >= 1) {
    throw std::invalid_argument("hardware_sensitivities: step in (0,1)");
  }

  struct Knob {
    const char* name;
    std::function<void(hw::SystemConfig&, double)> scale;
  };
  const std::vector<Knob> knobs = {
      {"tensor_flops",
       [](hw::SystemConfig& s, double f) { s.gpu.tensor_flops *= f; }},
      {"vector_flops",
       [](hw::SystemConfig& s, double f) { s.gpu.vector_flops *= f; }},
      {"hbm_bandwidth",
       [](hw::SystemConfig& s, double f) { s.gpu.hbm_bandwidth *= f; }},
      {"hbm_capacity",
       [](hw::SystemConfig& s, double f) { s.gpu.hbm_capacity *= f; }},
      {"nvs_bandwidth",
       [](hw::SystemConfig& s, double f) { s.net.nvs_bandwidth *= f; }},
      {"ib_bandwidth",
       [](hw::SystemConfig& s, double f) { s.net.ib_bandwidth *= f; }},
  };

  std::vector<Sensitivity> out;
  out.reserve(knobs.size());
  for (const Knob& knob : knobs) {
    hw::SystemConfig up = sys, down = sys;
    knob.scale(up, 1.0 + step);
    knob.scale(down, 1.0 - step);
    const double t_up = optimal_time(mdl, up, strategy, global_batch);
    const double t_down = optimal_time(mdl, down, strategy, global_batch);
    Sensitivity s;
    s.parameter = knob.name;
    if (std::isnan(t_up) || std::isnan(t_down)) {
      s.elasticity = std::nan("");
    } else {
      // Central difference in log-log space.
      s.elasticity = (std::log(t_up) - std::log(t_down)) /
                     (std::log(1.0 + step) - std::log(1.0 - step));
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace tfpe::report
