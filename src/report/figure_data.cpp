#include "report/figure_data.hpp"

namespace tfpe::report {

std::vector<std::int64_t> pow2_range(std::int64_t lo, std::int64_t hi) {
  std::vector<std::int64_t> out;
  for (std::int64_t v = lo; v <= hi; v *= 2) out.push_back(v);
  return out;
}

core::EvalResult optimal_at_scale(const model::TransformerConfig& mdl,
                                  hw::SystemConfig sys,
                                  parallel::TpStrategy strategy,
                                  std::int64_t global_batch, std::int64_t n) {
  sys.n_gpus = n;
  search::SearchOptions opts;
  opts.strategy = strategy;
  opts.global_batch = global_batch;
  opts.n_gpus = n;
  return search::find_optimal(mdl, sys, opts).best;
}

std::vector<LabeledResult> scaling_sweep(const model::TransformerConfig& mdl,
                                         const hw::SystemConfig& sys,
                                         parallel::TpStrategy strategy,
                                         std::int64_t global_batch,
                                         const std::vector<std::int64_t>& scales) {
  std::vector<LabeledResult> out;
  out.reserve(scales.size());
  for (std::int64_t n : scales) {
    out.push_back({std::to_string(n) + " GPUs",
                   optimal_at_scale(mdl, sys, strategy, global_batch, n)});
  }
  return out;
}

}  // namespace tfpe::report
