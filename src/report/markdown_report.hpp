#pragma once
// Markdown report generation: renders search results as a self-contained
// Markdown document (configuration table, time-breakdown table, memory
// table, notes) for pasting into issues / design docs. The CLI exposes it
// via --markdown.

#include <ostream>
#include <string>
#include <vector>

#include "report/breakdown_report.hpp"

namespace tfpe::report {

/// Render a full report: title, system/model context lines and the three
/// tables. Infeasible rows carry their reason.
void write_markdown_report(std::ostream& os, const std::string& title,
                           const std::vector<std::string>& context_lines,
                           const std::vector<LabeledResult>& results);

/// Convenience file writer; throws std::runtime_error when the path cannot
/// be opened.
void write_markdown_report_file(const std::string& path,
                                const std::string& title,
                                const std::vector<std::string>& context_lines,
                                const std::vector<LabeledResult>& results);

}  // namespace tfpe::report
