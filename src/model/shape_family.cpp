#include "model/shape_family.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace tfpe::model {

namespace {

std::vector<std::int64_t> axis_values(const std::vector<std::int64_t>& list,
                                      std::int64_t lo, std::int64_t hi,
                                      std::int64_t step, const char* what) {
  if (!list.empty()) {
    for (std::int64_t v : list) {
      if (v < 1) {
        throw std::invalid_argument(std::string("shape_family: ") + what +
                                    " entries must be >= 1");
      }
    }
    return list;
  }
  if (lo < 1 || hi < lo || step < 1) {
    throw std::invalid_argument(
        std::string("shape_family: ") + what +
        " range needs 1 <= min <= max and step >= 1");
  }
  std::vector<std::int64_t> out;
  for (std::int64_t v = lo; v <= hi; v += step) out.push_back(v);
  return out;
}

}  // namespace

std::vector<TransformerConfig> shape_family(const TransformerConfig& base,
                                            const ShapeFamilyOptions& opts) {
  const std::int64_t target =
      opts.target_params > 0 ? opts.target_params : base.total_params();
  if (target <= 0) {
    throw std::invalid_argument(
        "shape_family: target_params must be positive (or the base config "
        "must have positive total_params())");
  }
  if (!(opts.tolerance > 0.0) || !(opts.tolerance < 1.0)) {
    throw std::invalid_argument(
        "shape_family: tolerance must lie in (0, 1)");
  }
  if (!(opts.aspect_min > 0.0) || opts.aspect_max < opts.aspect_min) {
    throw std::invalid_argument(
        "shape_family: aspect window needs 0 < aspect_min <= aspect_max");
  }
  if (opts.hidden_multiple < 1) {
    throw std::invalid_argument(
        "shape_family: hidden_multiple must be >= 1");
  }
  const auto depths = axis_values(opts.depths, opts.depth_min, opts.depth_max,
                                  opts.depth_step, "depth");
  const auto heads = axis_values(opts.heads, opts.heads_min, opts.heads_max,
                                 opts.heads_step, "heads");
  const auto head_dims =
      axis_values(opts.head_dims, 0, -1, 1, "head_dims");
  if (opts.kv_heads.empty() || opts.moe_experts.empty()) {
    throw std::invalid_argument(
        "shape_family: kv_heads / moe_experts axes must be non-empty "
        "(use {0} for MHA / dense)");
  }
  for (std::int64_t v : opts.kv_heads) {
    if (v < 0) {
      throw std::invalid_argument("shape_family: kv_heads entries must be "
                                  ">= 0 (0 = MHA)");
    }
  }
  for (std::int64_t v : opts.moe_experts) {
    if (v < 0) {
      throw std::invalid_argument("shape_family: moe_experts entries must "
                                  "be >= 0 (0 = dense)");
    }
  }

  const double tgt = static_cast<double>(target);
  std::vector<TransformerConfig> out;
  for (const std::int64_t d : depths) {
    for (const std::int64_t h : heads) {
      for (const std::int64_t eh : head_dims) {
        const std::int64_t e = h * eh;
        for (const std::int64_t kv : opts.kv_heads) {
          if (kv > 0 && (kv > h || h % kv != 0)) continue;
          const std::int64_t ekv = (kv == 0 ? h : kv) * eh;
          for (const std::int64_t experts : opts.moe_experts) {
            // Solve params_per_layer(e, f) * d + vocab * e = target for f
            // (linear in f), then round to the hidden multiple.
            const double ed = static_cast<double>(e);
            const double per_layer =
                (tgt - static_cast<double>(base.vocab) * ed) /
                static_cast<double>(d);
            const double attn = 2.0 * ed * ed +
                                2.0 * ed * static_cast<double>(ekv) +
                                2.0 * ed + 2.0 * static_cast<double>(ekv);
            const double ln = 4.0 * ed;
            const double mlp_budget = per_layer - attn - ln;
            if (mlp_budget <= 0.0) continue;
            // Dense: 2ef + f + e.  MoE: ((2ef + f + e) + e) * E (expert
            // copies plus the router column per expert).
            const double f_exact =
                experts > 0
                    ? (mlp_budget / static_cast<double>(experts) - 2.0 * ed) /
                          (2.0 * ed + 1.0)
                    : (mlp_budget - ed) / (2.0 * ed + 1.0);
            if (!(f_exact > 0.0)) continue;
            const double hm = static_cast<double>(opts.hidden_multiple);
            std::int64_t f = static_cast<std::int64_t>(
                                 std::llround(f_exact / hm)) *
                             opts.hidden_multiple;
            if (f < opts.hidden_multiple) f = opts.hidden_multiple;
            const double aspect = static_cast<double>(f) / ed;
            if (aspect < opts.aspect_min || aspect > opts.aspect_max) {
              continue;
            }

            TransformerConfig cfg = base;
            cfg.embed = e;
            cfg.heads = h;
            cfg.depth = d;
            cfg.hidden = f;
            cfg.kv_heads = kv;
            cfg.moe_experts = experts;
            const double total = static_cast<double>(cfg.total_params());
            if (std::abs(total - tgt) > opts.tolerance * tgt) continue;
            cfg.name = base.name + "-d" + std::to_string(d) + "-h" +
                       std::to_string(h) + "x" + std::to_string(eh) + "-f" +
                       std::to_string(f);
            if (kv > 0) cfg.name += "-kv" + std::to_string(kv);
            if (experts > 0) cfg.name += "-x" + std::to_string(experts);
            cfg.validate();
            out.push_back(std::move(cfg));
          }
        }
      }
    }
  }
  return out;
}

}  // namespace tfpe::model
