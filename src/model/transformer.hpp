#pragma once
// Transformer architecture description (paper §III).
//
// The model is a stack of `depth` identical blocks, each containing
// self-attention (QKV projections, fused Logit/Attend, output projection)
// and an MLP (two linear layers with GeLU), with LayerNorms, dropouts and
// residual additions. Dimensions follow the paper's notation:
//   l  sequence length      e  embedding dimension
//   h  attention heads      f  hidden dimension (typically 4e)
//   d  depth (block count)  e_h = e/h head dimension

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tfpe::model {

/// Self-attention variant (paper §V "Outlook": windowed / linear attention
/// are listed as future-work architectures for reducing the ViT's sequence
/// costs — implemented here as model options).
enum class AttentionKind {
  kFull,      ///< Dense softmax attention, O(l^2).
  kWindowed,  ///< Local attention over a `window`-token neighborhood, O(l*w).
  kLinear,    ///< Kernelized linear attention, O(l * e_h) per head.
};

std::string to_string(AttentionKind kind);

struct TransformerConfig {
  std::string name;
  std::int64_t seq_len = 0;     ///< l
  std::int64_t embed = 0;       ///< e
  std::int64_t heads = 0;       ///< h
  std::int64_t depth = 0;       ///< d
  std::int64_t hidden = 0;      ///< f (0 -> defaults to 4e in presets)

  /// Grouped-query attention: number of K/V heads (0 -> = heads, i.e. MHA).
  std::int64_t kv_heads = 0;

  /// Vocabulary size. 0 (the paper's block-level model) excludes the
  /// embedding and output head; > 0 adds a tied (V x e) embedding on the
  /// first pipeline stage and the (e x V) logits matmul + softmax loss on
  /// the last.
  std::int64_t vocab = 0;

  AttentionKind attention = AttentionKind::kFull;
  std::int64_t window = 0;      ///< Window size for kWindowed.

  /// Mixture-of-experts MLP (0 = dense). With E experts, every block's MLP
  /// holds E expert copies of (W1, W2); each token is routed to
  /// `moe_top_k` of them. Experts shard over the data-parallel group
  /// (expert parallelism) and tokens move by AllToAll.
  std::int64_t moe_experts = 0;
  std::int64_t moe_top_k = 2;

  bool is_moe() const { return moe_experts > 0; }

  std::int64_t head_dim() const { return embed / heads; }
  std::int64_t kv_heads_or_default() const {
    return kv_heads == 0 ? heads : kv_heads;
  }
  /// Width of the concatenated K (or V) projection: kv_heads * head_dim.
  std::int64_t kv_embed() const { return kv_heads_or_default() * head_dim(); }
  /// Effective key/value length each query attends over.
  std::int64_t attended_len() const;

  /// Learnable parameters per block: 4 e^2 attention + 2 e f MLP + biases
  /// and the two LayerNorm gains/offsets.
  std::int64_t params_per_layer() const;

  /// Total learnable parameters over all blocks (embeddings/head excluded,
  /// as in the paper's block-level model).
  std::int64_t total_params() const;

  /// FLOPs of one block's forward pass on a batch of `b` unpartitioned
  /// samples — used for MLP:S/A ratio sanity checks (GPT3-1T ~2x, ViT ~0.5x).
  double mlp_flops(std::int64_t b) const;
  double attention_flops(std::int64_t b) const;

  /// Throws std::invalid_argument when dimensions are inconsistent
  /// (e.g. heads not dividing embed).
  void validate() const;
};

/// GPT3-1T: the paper's LLM pre-training representative,
/// (l,e,h,d) = (2048, 25600, 160, 128), ~1T parameters.
TransformerConfig gpt3_1t();

/// ViT-64K: long-sequence vision transformer for SciML foundation models,
/// (l,e,h,d) = (64800, 12288, 64, 48); l = 720x1440 ERA5 grid at patch 4.
TransformerConfig vit_64k();

/// GPT3-175B, used in the paper's empirical validation on 512 GPUs.
TransformerConfig gpt3_175b();

/// 32K-sequence ViT, used in the paper's empirical validation on 512 GPUs.
TransformerConfig vit_32k();

/// ViT-64K with windowed attention of the given window (paper §V outlook:
/// "linear (or windowed) attention versions of the ViT").
TransformerConfig vit_64k_windowed(std::int64_t window);

/// ViT-64K with linear attention.
TransformerConfig vit_64k_linear();

/// Llama-3-405B-like dense model with grouped-query attention (8 KV heads),
/// exercising the GQA extension: (l,e,h,kv,d,f) = (8192, 16384, 128, 8,
/// 126, 53248).
TransformerConfig llama3_405b();

/// Mixture-of-experts LLM in the GPT-MoE-1.8T class: (l,e,h,d) =
/// (2048, 8192, 64, 40) with 64 experts, top-2 routing (~1.4T total
/// parameters, ~80B active per token).
TransformerConfig gpt_moe_1t();

/// Look up a preset by CLI-friendly name ("gpt3-1t", "vit-64k", "gpt3-175b",
/// "vit-32k", "llama3-405b", "vit-64k-linear"); nullopt for unknown names.
std::optional<TransformerConfig> preset_by_name(const std::string& name);

/// Names accepted by preset_by_name, for usage messages.
std::vector<std::string> preset_names();

}  // namespace tfpe::model
