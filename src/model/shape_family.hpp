#pragma once
// Iso-parameter architecture families (Anthony et al., "The Case for
// Co-Designing Model Architectures with Hardware", arXiv 2401.14489): all
// transformer shapes (e, h, f, d, kv_heads, moe_experts) whose
// total_params() lands within a tolerance of a target — the architecture
// axis of the co-design search (search/codesign.hpp).
//
// The family is generated constructively, not by rejection over a 6-D
// grid: for every (depth, heads, head_dim[, kv_heads, moe_experts]) tuple
// the MLP hidden dimension f is SOLVED from the parameter budget
//   params_per_layer(e, f, ...) * depth + vocab * e  ~=  target
// (linear in f), rounded to `hidden_multiple`, and kept only when the
// rounded shape still meets the tolerance, the f/e aspect-ratio window and
// the divisibility constraints (e = heads * head_dim by construction,
// kv_heads | heads). One tuple therefore yields at most one shape, and the
// family size is the grid size minus the aspect/tolerance rejections.
//
// Shapes inherit everything dimension-unrelated from the base config:
// seq_len, vocab, attention kind/window and moe_top_k. Enumeration order is
// deterministic (depth outer, then heads, head_dim, kv_heads, moe_experts)
// so adjacent shapes differ in few dimensions — the order the co-design
// engine's cross-shape warm starts exploit.

#include <cstdint>
#include <vector>

#include "model/transformer.hpp"

namespace tfpe::model {

struct ShapeFamilyOptions {
  /// Parameter budget the family is iso to; 0 = base.total_params().
  std::int64_t target_params = 0;
  /// Relative |total_params() - target| / target admitted, in (0, 1).
  double tolerance = 0.02;

  /// Depth axis: explicit `depths` list, or the inclusive range
  /// [depth_min, depth_max] in steps of depth_step when the list is empty.
  std::vector<std::int64_t> depths;
  std::int64_t depth_min = 32;
  std::int64_t depth_max = 160;
  std::int64_t depth_step = 16;

  /// Head-count axis: explicit `heads` list, or [heads_min, heads_max] in
  /// steps of heads_step. The embedding is e = heads * head_dim.
  std::vector<std::int64_t> heads;
  std::int64_t heads_min = 32;
  std::int64_t heads_max = 256;
  std::int64_t heads_step = 16;

  /// Head-dimension candidates (e_h = e / h).
  std::vector<std::int64_t> head_dims{128, 160};

  /// Admitted MLP aspect-ratio window f / e (the paper's presets sit at 4).
  double aspect_min = 2.0;
  double aspect_max = 6.0;

  /// The solved hidden dimension is rounded to the nearest positive
  /// multiple of this (tensor-core tile friendliness).
  std::int64_t hidden_multiple = 128;

  /// Grouped-query axis: K/V head counts to try; 0 = MHA (kv_heads =
  /// heads). Entries not dividing a shape's head count are skipped for
  /// that shape.
  std::vector<std::int64_t> kv_heads{0};

  /// Mixture-of-experts axis: expert counts to try; 0 = dense.
  std::vector<std::int64_t> moe_experts{0};
};

/// All valid shapes within the options' tolerance of the target parameter
/// count, in deterministic enumeration order. Every returned config passes
/// TransformerConfig::validate(). Throws std::invalid_argument when the
/// options are malformed (non-positive target after defaulting, tolerance
/// outside (0, 1), empty or non-positive axes, min > max, step < 1) — the
/// same conditions io/config_lint reports as TFPE-CODESIGN diagnostics.
std::vector<TransformerConfig> shape_family(const TransformerConfig& base,
                                            const ShapeFamilyOptions& opts);

}  // namespace tfpe::model
