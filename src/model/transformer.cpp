#include "model/transformer.hpp"

#include <stdexcept>

namespace tfpe::model {

std::string to_string(AttentionKind kind) {
  switch (kind) {
    case AttentionKind::kFull: return "full";
    case AttentionKind::kWindowed: return "windowed";
    case AttentionKind::kLinear: return "linear";
  }
  return "?";
}

std::int64_t TransformerConfig::attended_len() const {
  switch (attention) {
    case AttentionKind::kFull: return seq_len;
    case AttentionKind::kWindowed:
      return window < seq_len ? window : seq_len;
    case AttentionKind::kLinear:
      // Linear attention contracts through an (e_h x e_h) state per head.
      return head_dim();
  }
  return seq_len;
}

std::int64_t TransformerConfig::params_per_layer() const {
  // WQ and Wp are (e, e); WK and WV are (e, kv_embed) under GQA.
  const std::int64_t attn = 2 * embed * embed + 2 * embed * kv_embed() +
                            2 * embed + 2 * kv_embed();
  std::int64_t mlp = 2 * embed * hidden + hidden + embed;
  if (is_moe()) {
    // E expert copies plus the (e x E) router.
    mlp = mlp * moe_experts + embed * moe_experts;
  }
  const std::int64_t ln = 2 * 2 * embed;  // two LayerNorms, gain + offset
  return attn + mlp + ln;
}

std::int64_t TransformerConfig::total_params() const {
  return params_per_layer() * depth + vocab * embed;  // tied embedding
}

double TransformerConfig::mlp_flops(std::int64_t b) const {
  // Two matmuls: (b l, e)x(e, f) and (b l, f)x(f, e); MoE runs them
  // moe_top_k times per token.
  const double bl = static_cast<double>(b) * static_cast<double>(seq_len);
  const double routed = is_moe() ? static_cast<double>(moe_top_k) : 1.0;
  return routed * 2.0 * bl * static_cast<double>(embed) *
         static_cast<double>(hidden) * 2.0;
}

double TransformerConfig::attention_flops(std::int64_t b) const {
  const double bl = static_cast<double>(b) * static_cast<double>(seq_len);
  const double e = static_cast<double>(embed);
  const double lkv = static_cast<double>(attended_len());
  // Q + output projections (e x e), K/V projections (e x kv_embed);
  // Logit + Attend: 2 batched matmuls of b h (l x e_h)(e_h x lkv).
  const double proj =
      2.0 * bl * (2.0 * e * e + 2.0 * e * static_cast<double>(kv_embed()));
  const double la = 2.0 * 2.0 * bl * lkv * e;
  return proj + la;
}

void TransformerConfig::validate() const {
  if (seq_len < 1 || embed < 1 || heads < 1 || depth < 1 || hidden < 1) {
    throw std::invalid_argument("TransformerConfig: dimensions must be >= 1");
  }
  if (embed % heads != 0) {
    throw std::invalid_argument("TransformerConfig: heads must divide embed");
  }
  if (kv_heads != 0 && heads % kv_heads != 0) {
    throw std::invalid_argument("TransformerConfig: kv_heads must divide heads");
  }
  if (attention == AttentionKind::kWindowed && window < 1) {
    throw std::invalid_argument("TransformerConfig: windowed attention needs window >= 1");
  }
  if (is_moe() && (moe_top_k < 1 || moe_top_k > moe_experts)) {
    throw std::invalid_argument(
        "TransformerConfig: moe_top_k must be in [1, moe_experts]");
  }
}

namespace {
TransformerConfig make(std::string name, std::int64_t l, std::int64_t e,
                       std::int64_t h, std::int64_t d, std::int64_t f = 0) {
  TransformerConfig cfg{std::move(name), l, e, h, d, f == 0 ? 4 * e : f};
  cfg.validate();
  return cfg;
}
}  // namespace

TransformerConfig gpt3_1t() { return make("GPT3-1T", 2048, 25600, 160, 128); }

TransformerConfig vit_64k() { return make("ViT-64K", 64800, 12288, 64, 48); }

TransformerConfig gpt3_175b() { return make("GPT3-175B", 2048, 12288, 96, 96); }

TransformerConfig vit_32k() {
  // The paper validates a "32K ViT" on 512 A100s without listing full
  // hyper-parameters; we take half the ViT-64K sequence (32400 = 720x1440 at
  // patch ~5.66 -> rounded grid) with a mid-size backbone.
  return make("ViT-32K", 32400, 6144, 48, 24);
}

TransformerConfig vit_64k_windowed(std::int64_t window) {
  TransformerConfig cfg = vit_64k();
  cfg.name = "ViT-64K-w" + std::to_string(window);
  cfg.attention = AttentionKind::kWindowed;
  cfg.window = window;
  cfg.validate();
  return cfg;
}

TransformerConfig vit_64k_linear() {
  TransformerConfig cfg = vit_64k();
  cfg.name = "ViT-64K-linear";
  cfg.attention = AttentionKind::kLinear;
  cfg.validate();
  return cfg;
}

TransformerConfig gpt_moe_1t() {
  TransformerConfig cfg = make("GPT-MoE-1T", 2048, 8192, 64, 40);
  cfg.moe_experts = 64;
  cfg.moe_top_k = 2;
  cfg.validate();
  return cfg;
}

std::optional<TransformerConfig> preset_by_name(const std::string& name) {
  if (name == "gpt-moe-1t") return gpt_moe_1t();
  if (name == "gpt3-1t") return gpt3_1t();
  if (name == "vit-64k") return vit_64k();
  if (name == "gpt3-175b") return gpt3_175b();
  if (name == "vit-32k") return vit_32k();
  if (name == "llama3-405b") return llama3_405b();
  if (name == "vit-64k-linear") return vit_64k_linear();
  return std::nullopt;
}

std::vector<std::string> preset_names() {
  return {"gpt3-1t", "vit-64k", "gpt3-175b", "vit-32k", "llama3-405b",
          "vit-64k-linear", "gpt-moe-1t"};
}

TransformerConfig llama3_405b() {
  // Llama-3 uses a three-matrix SwiGLU MLP with f = 53248; this block model
  // has a two-matrix MLP, so we use the parameter-equivalent hidden
  // 1.5 * 53248 = 79872 to land at ~405B parameters.
  TransformerConfig cfg{"Llama3-405B", 8192, 16384, 128, 126, 79872};
  cfg.kv_heads = 8;
  cfg.validate();
  return cfg;
}

}  // namespace tfpe::model
