#include "pipeline/pipeline_model.hpp"

#include <algorithm>

#include "comm/collective_algorithm.hpp"
#include "ops/op.hpp"

namespace tfpe::pipeline {

Seconds bubble_time(std::int64_t np, Seconds t_fwd, Seconds t_bwd,
                    std::int64_t interleave) {
  return (t_fwd + t_bwd) *
         (static_cast<double>(np - 1) / static_cast<double>(interleave));
}

std::int64_t in_flight_microbatches(std::int64_t np, std::int64_t m) {
  return std::min(np, m);
}

Seconds p2p_time(const hw::NetworkSpec& net, std::int64_t np, std::int64_t m,
                 Bytes boundary_bytes, std::int64_t nvs_neighbors,
                 std::int64_t interleave) {
  if (np <= 1) return Seconds(0);
  const Seconds one_hop = comm::collective_time(
      net, ops::Collective::PointToPoint, boundary_bytes,
      {.size = 2, .nvs = nvs_neighbors});
  // Forward activation send + backward gradient send per microbatch, once
  // per virtual chunk.
  return one_hop *
         (2.0 * static_cast<double>(m) * static_cast<double>(interleave));
}

Seconds p2p_time(const comm::FabricPricer& pricer,
                 const comm::FabricPricer::Placed& hop, std::int64_t np,
                 std::int64_t m, Bytes boundary_bytes,
                 std::int64_t interleave) {
  if (np <= 1) return Seconds(0);
  const Seconds one_hop =
      pricer.price(ops::Collective::PointToPoint, boundary_bytes, hop);
  return one_hop *
         (2.0 * static_cast<double>(m) * static_cast<double>(interleave));
}

Seconds p2p_time(const hw::Topology& fabric, std::int64_t np, std::int64_t m,
                 Bytes boundary_bytes, std::int64_t nvs_neighbors,
                 std::int64_t interleave) {
  if (np <= 1) return Seconds(0);
  const Seconds one_hop = comm::collective_time(
      fabric, ops::Collective::PointToPoint, boundary_bytes,
      {.size = 2, .nvs = nvs_neighbors});
  return one_hop *
         (2.0 * static_cast<double>(m) * static_cast<double>(interleave));
}

Seconds iteration_time(std::int64_t np, std::int64_t m, Seconds t_fwd,
                       Seconds t_bwd) {
  return (t_fwd + t_bwd) * static_cast<double>(m) +
         bubble_time(np, t_fwd, t_bwd);
}

Seconds p2p_hop(const hw::Topology& fabric, Bytes boundary_bytes,
                std::int64_t nvs_neighbors) {
  return comm::collective_time(fabric, ops::Collective::PointToPoint,
                               boundary_bytes,
                               {.size = 2, .nvs = nvs_neighbors});
}

Seconds p2p_hop(const comm::FabricPricer& pricer,
                const comm::FabricPricer::Placed& hop, Bytes boundary_bytes) {
  return pricer.price(ops::Collective::PointToPoint, boundary_bytes, hop);
}

Seconds prefill_latency(std::int64_t np, std::int64_t m, Seconds t_stage,
                        Seconds t_hop) {
  return t_stage * static_cast<double>(m + np - 1) +
         t_hop * static_cast<double>(np - 1);
}

Seconds decode_round_time(std::int64_t np, Seconds t_stage_group,
                          Seconds t_hop) {
  if (np <= 1) return t_stage_group;
  return (t_stage_group + t_hop) * static_cast<double>(np);
}

}  // namespace tfpe::pipeline
