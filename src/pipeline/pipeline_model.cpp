#include "pipeline/pipeline_model.hpp"

#include <algorithm>

#include "ops/op.hpp"

namespace tfpe::pipeline {

double bubble_time(std::int64_t np, double t_fwd, double t_bwd,
                   std::int64_t interleave) {
  return static_cast<double>(np - 1) * (t_fwd + t_bwd) /
         static_cast<double>(interleave);
}

std::int64_t in_flight_microbatches(std::int64_t np, std::int64_t m) {
  return std::min(np, m);
}

double p2p_time(const hw::NetworkSpec& net, std::int64_t np, std::int64_t m,
                double boundary_bytes, std::int64_t nvs_neighbors,
                std::int64_t interleave) {
  if (np <= 1) return 0.0;
  const double one_hop = comm::collective_time(
      net, ops::Collective::PointToPoint, boundary_bytes,
      {.size = 2, .nvs = nvs_neighbors});
  // Forward activation send + backward gradient send per microbatch, once
  // per virtual chunk.
  return 2.0 * static_cast<double>(m) * static_cast<double>(interleave) *
         one_hop;
}

double iteration_time(std::int64_t np, std::int64_t m, double t_fwd,
                      double t_bwd) {
  return static_cast<double>(m) * (t_fwd + t_bwd) + bubble_time(np, t_fwd, t_bwd);
}

}  // namespace tfpe::pipeline
