#pragma once
// 1F1B non-interleaved pipeline schedule model (paper §III S1/S2).
//
// A global batch is split into m microbatches; stages run one-forward-
// one-backward in steady state. Idle (bubble) time is (np - 1)(tf + tb) and
// the schedule keeps at most np microbatches of activations in flight.
// Stage-boundary activations move by point-to-point messages which the model
// does not overlap with compute (shown small in §IV).

#include <cstdint>

#include "comm/collective_algorithm.hpp"
#include "comm/collective_model.hpp"
#include "hw/network.hpp"
#include "hw/topology.hpp"

namespace tfpe::pipeline {

/// Bubble time for an np-stage pipeline with per-microbatch forward/backward
/// times tf / tb. With `interleave` v > 1 (interleaved 1F1B, v virtual
/// chunks per GPU) the bubble shrinks by a factor v (Narayanan et al.).
Seconds bubble_time(std::int64_t np, Seconds t_fwd, Seconds t_bwd,
                    std::int64_t interleave = 1);

/// Microbatches whose activations are simultaneously resident on the most
/// loaded stage: min(m, np).
std::int64_t in_flight_microbatches(std::int64_t np, std::int64_t m);

/// Total exposed point-to-point time per iteration for one stage:
/// m microbatches x (forward activation + backward gradient) messages of
/// `boundary_bytes` each, times the interleave factor (each microbatch
/// crosses every stage boundary v times). `nvs_neighbors` > 1 places
/// pipeline neighbors in the same fast domain.
Seconds p2p_time(const hw::NetworkSpec& net, std::int64_t np, std::int64_t m,
                 Bytes boundary_bytes, std::int64_t nvs_neighbors,
                 std::int64_t interleave = 1);

/// Same against a resolved fabric: the hop crosses the innermost level the
/// two neighbors share. Bitwise identical to the NetworkSpec overload for
/// the canonical two-level fabric.
Seconds p2p_time(const hw::Topology& fabric, std::int64_t np, std::int64_t m,
                 Bytes boundary_bytes, std::int64_t nvs_neighbors,
                 std::int64_t interleave = 1);

/// Same through a comm::FabricPricer bound to the fabric: one price() of the
/// pre-placed neighbor pair instead of a fabric walk. `hop` must be
/// pricer.place({.size = 2, .nvs = nvs_neighbors}) for the same
/// nvs_neighbors the Topology overload would receive — then the result is
/// bitwise identical to it (the pricer's contract).
Seconds p2p_time(const comm::FabricPricer& pricer,
                 const comm::FabricPricer::Placed& hop, std::int64_t np,
                 std::int64_t m, Bytes boundary_bytes,
                 std::int64_t interleave = 1);

/// End-to-end iteration time: m steady microbatches plus the bubble.
Seconds iteration_time(std::int64_t np, std::int64_t m, Seconds t_fwd,
                       Seconds t_bwd);

// -- Inference phases (core/workload.hpp). Serving replaces the 1F1B
// fill/drain with two schedules: a forward-only prefill ramp and a steady
// decode rotation of request groups around the stages.

/// One stage-boundary activation hop, one direction (the fill/drain model
/// above charges fwd + bwd per microbatch; inference phases have no
/// backward). Zero when the fabric hop is moot (np = 1 callers pass any
/// bytes).
Seconds p2p_hop(const hw::Topology& fabric, Bytes boundary_bytes,
                std::int64_t nvs_neighbors);

/// Same through a bound FabricPricer (`hop` = pricer.place({.size = 2,
/// .nvs = nvs_neighbors}); bitwise identical to the Topology overload).
Seconds p2p_hop(const comm::FabricPricer& pricer,
                const comm::FabricPricer::Placed& hop, Bytes boundary_bytes);

/// Prefill latency: m prompt microbatches streamed through np forward-only
/// stages of `t_stage` each — (m + np - 1) stage slots plus the (np - 1)
/// boundary hops on the first token's critical path.
Seconds prefill_latency(std::int64_t np, std::int64_t m, Seconds t_stage,
                        Seconds t_hop);

/// Steady-state decode round: the resident batch is split into np groups
/// that rotate around the stages, one token per request per round. Each
/// stage serves all np groups per round (np x t_stage_group) and every
/// group crossing pays a boundary hop (np hops around the ring, including
/// the next-token feedback to stage 0). This is the per-token latency
/// (TPOT) before continuous-batching prefill interference.
Seconds decode_round_time(std::int64_t np, Seconds t_stage_group,
                          Seconds t_hop);

}  // namespace tfpe::pipeline
