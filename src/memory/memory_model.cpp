#include "memory/memory_model.hpp"

namespace tfpe::memory {

MemoryBreakdown compute_memory(const parallel::LayerCost& layer,
                               const parallel::ParallelConfig& cfg,
                               std::int64_t layers_per_stage,
                               std::int64_t in_flight_microbatches) {
  MemoryBreakdown mem;
  const double stage_params =
      layer.weight_params * static_cast<double>(layers_per_stage);
  // ZeRO-1 shards the optimizer states over the data-parallel group; in 2D
  // TP the weights are additionally replicated over n2, so the states shard
  // over nd * n2 (the same group that reduces the weight gradients). ZeRO-3
  // shards the FP16 weights and gradients over the same group too, keeping
  // one layer's worth of gathered weights as working set.
  double shard = static_cast<double>(cfg.nd);
  if (layer.dp_group_includes_tp2) shard *= static_cast<double>(cfg.n2);
  if (cfg.zero == parallel::ZeroStage::kWeights) {
    mem.weights = Bytes(2.0 * (stage_params / shard + layer.weight_params));
    mem.gradients = Bytes(2.0 * (stage_params / shard + layer.weight_params));
  } else {
    mem.weights = Bytes(2.0 * stage_params);
    mem.gradients = Bytes(2.0 * stage_params);
  }
  mem.optimizer = Bytes(12.0 * stage_params / shard);
  mem.activations = layer.stored_bytes() *
                    (static_cast<double>(layers_per_stage) *
                     static_cast<double>(in_flight_microbatches));
  return mem;
}

}  // namespace tfpe::memory
