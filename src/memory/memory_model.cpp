#include "memory/memory_model.hpp"

#include "ops/op_factory.hpp"

namespace tfpe::memory {

MemoryBreakdown compute_memory(const parallel::LayerCost& layer,
                               const parallel::ParallelConfig& cfg,
                               std::int64_t layers_per_stage,
                               std::int64_t in_flight_microbatches) {
  MemoryBreakdown mem;
  const double stage_params =
      layer.weight_params * static_cast<double>(layers_per_stage);
  // ZeRO-1 shards the optimizer states over the data-parallel group; in 2D
  // TP the weights are additionally replicated over n2, so the states shard
  // over nd * n2 (the same group that reduces the weight gradients). ZeRO-3
  // shards the FP16 weights and gradients over the same group too, keeping
  // one layer's worth of gathered weights as working set.
  double shard = static_cast<double>(cfg.nd);
  if (layer.dp_group_includes_tp2) shard *= static_cast<double>(cfg.n2);
  if (cfg.zero == parallel::ZeroStage::kWeights) {
    mem.weights = Bytes(2.0 * (stage_params / shard + layer.weight_params));
    mem.gradients = Bytes(2.0 * (stage_params / shard + layer.weight_params));
  } else {
    mem.weights = Bytes(2.0 * stage_params);
    mem.gradients = Bytes(2.0 * stage_params);
  }
  mem.optimizer = Bytes(12.0 * stage_params / shard);
  mem.activations = layer.stored_bytes() *
                    (static_cast<double>(layers_per_stage) *
                     static_cast<double>(in_flight_microbatches));
  return mem;
}

Bytes kv_cache_bytes(const model::TransformerConfig& mdl, std::int64_t layers,
                     double tokens, std::int64_t tp) {
  const double hkv = static_cast<double>(mdl.kv_heads_or_default());
  const double nt = static_cast<double>(tp);
  const double hkv_local = hkv / nt > 1.0 ? hkv / nt : 1.0;
  const double width = hkv_local * static_cast<double>(mdl.head_dim());
  return Bytes(2.0 * ops::kBytesPerElement * width * tokens *
               static_cast<double>(layers));
}

MemoryBreakdown compute_inference_memory(const parallel::LayerCost& layer,
                                         std::int64_t layers_per_stage,
                                         Bytes kv_cache, Bytes working_set) {
  MemoryBreakdown mem;
  mem.weights = Bytes(2.0 * layer.weight_params *
                      static_cast<double>(layers_per_stage));
  mem.activations = working_set;
  mem.kv_cache = kv_cache;
  return mem;
}

}  // namespace tfpe::memory
