#pragma once
// HBM memory-consumption model (paper §III S2 "Memory Used on HBM").
//
// Mixed-precision training with a distributed Adam optimizer:
//   * weights:          2 bytes / resident parameter (FP16)
//   * weight gradients: 2 bytes / resident parameter
//   * optimizer states: 12 bytes / parameter, sharded over the nd
//     data-parallel group (FP32 master weights + two Adam moments, ZeRO-1)
//   * activations: per-op stored tensors for every in-flight microbatch;
//     the 1F1B schedule keeps min(m, np) microbatches resident, and
//     FlashAttention recomputation already removed the l x l logits.

#include <cstdint>

#include "hw/system.hpp"
#include "parallel/layer_builder.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::memory {

struct MemoryBreakdown {
  Bytes weights;
  Bytes gradients;
  Bytes optimizer;
  Bytes activations;

  Bytes total() const { return weights + gradients + optimizer + activations; }
};

/// Memory resident on one GPU for `layers_per_stage` blocks of the given
/// per-block cost, with `in_flight` microbatches of activations.
MemoryBreakdown compute_memory(const parallel::LayerCost& layer,
                               const parallel::ParallelConfig& cfg,
                               std::int64_t layers_per_stage,
                               std::int64_t in_flight_microbatches);

}  // namespace tfpe::memory
