#pragma once
// HBM memory-consumption model (paper §III S2 "Memory Used on HBM").
//
// Mixed-precision training with a distributed Adam optimizer:
//   * weights:          2 bytes / resident parameter (FP16)
//   * weight gradients: 2 bytes / resident parameter
//   * optimizer states: 12 bytes / parameter, sharded over the nd
//     data-parallel group (FP32 master weights + two Adam moments, ZeRO-1)
//   * activations: per-op stored tensors for every in-flight microbatch;
//     the 1F1B schedule keeps min(m, np) microbatches resident, and
//     FlashAttention recomputation already removed the l x l logits.

#include <cstdint>

#include "hw/system.hpp"
#include "parallel/layer_builder.hpp"
#include "parallel/parallel_config.hpp"

namespace tfpe::memory {

struct MemoryBreakdown {
  Bytes weights;
  Bytes gradients;
  Bytes optimizer;
  Bytes activations;
  /// K/V token cache (inference phases). Always Bytes(0) for training, so
  /// adding the term kept every training total bitwise-unchanged.
  Bytes kv_cache;

  Bytes total() const {
    return weights + gradients + optimizer + activations + kv_cache;
  }
};

/// Memory resident on one GPU for `layers_per_stage` blocks of the given
/// per-block cost, with `in_flight` microbatches of activations.
MemoryBreakdown compute_memory(const parallel::LayerCost& layer,
                               const parallel::ParallelConfig& cfg,
                               std::int64_t layers_per_stage,
                               std::int64_t in_flight_microbatches);

/// Per-GPU K/V cache bytes for `tokens` cached tokens of one sequence over
/// `layers` blocks: 2 (K and V) x kv_heads x head_dim x tokens x 2 B/elem
/// per layer, with the kv_heads sharded over tp while tp <= kv_heads and
/// replicated beyond (grouped-query attention).
Bytes kv_cache_bytes(const model::TransformerConfig& mdl, std::int64_t layers,
                     double tokens, std::int64_t tp);

/// Inference-phase residency: the optimizer/gradient state of the training
/// breakdown is replaced by the K/V cache, and `working_set` bounds the
/// transient activation buffers (no stored-for-backward tensors exist).
MemoryBreakdown compute_inference_memory(const parallel::LayerCost& layer,
                                         std::int64_t layers_per_stage,
                                         Bytes kv_cache, Bytes working_set);

}  // namespace tfpe::memory
