// tfpe-sweep — batch experiment runner: evaluates the optimal configuration
// over the cross product of sweep axes and writes one CSV row per point.
// This is the "figure factory" for user studies beyond the paper's set.
//
// Sweep spec (same syntax as model/system config files):
//
//   [sweep]
//   model = gpt3-1t, vit-64k      # presets, comma-separated
//   gpu = a100, b200
//   nvs = 4, 8, 64
//   gpus = 1024, 4096, 16384
//   strategy = 1d, 2d, summa
//   batch = 4096
//   output = sweep.csv
//
// Usage: tfpe-sweep spec.tfpe [--output path]

#include <fstream>
#include <iostream>

#include "io/config_file.hpp"
#include "report/figure_data.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace {

using namespace tfpe;

int usage(const char* msg) {
  if (msg) std::cerr << "error: " << msg << "\n";
  std::cerr << "usage: tfpe-sweep spec.tfpe [--output path]\n"
               "see the header of tools/tfpe_sweep.cpp for the spec format\n";
  return 2;
}

std::optional<parallel::TpStrategy> strategy_by_name(const std::string& s) {
  if (s == "1d") return parallel::TpStrategy::TP1D;
  if (s == "2d") return parallel::TpStrategy::TP2D;
  if (s == "summa") return parallel::TpStrategy::Summa2D;
  return std::nullopt;
}

std::optional<hw::GpuGeneration> gen_by_name(const std::string& s) {
  if (s == "a100") return hw::GpuGeneration::A100;
  if (s == "h200") return hw::GpuGeneration::H200;
  if (s == "b200") return hw::GpuGeneration::B200;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().empty()) return usage("missing sweep spec");

  io::ConfigSections sections;
  try {
    std::ifstream in(args.positional().front());
    if (!in) return usage("cannot open spec file");
    sections = io::parse_config(in);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  const auto it = sections.find("sweep");
  if (it == sections.end()) return usage("spec has no [sweep] section");
  const io::Section& spec = it->second;

  auto axis = [&](const char* key, const char* fallback) {
    const auto found = spec.find(key);
    return util::split_list(found != spec.end() ? found->second : fallback);
  };
  const auto models = axis("model", "gpt3-1t");
  const auto gpus_axis = axis("gpu", "b200");
  const auto nvs_axis = axis("nvs", "8");
  const auto scale_axis = axis("gpus", "1024");
  const auto strat_axis = axis("strategy", "1d");
  const auto batch_axis = axis("batch", "4096");

  std::string output = args.get_or("output", "");
  if (output.empty()) {
    const auto out_it = spec.find("output");
    output = out_it != spec.end() ? out_it->second : "sweep.csv";
  }

  util::CsvWriter csv(output);
  csv.write_header({"model", "gpu", "nvs", "gpus", "strategy", "batch",
                    "feasible", "config", "iter_s", "tokens_per_s_per_gpu",
                    "hbm_gb"});

  std::size_t points = 0, feasible = 0;
  for (const auto& model_name : models) {
    const auto mdl = model::preset_by_name(model_name);
    if (!mdl) return usage(("unknown model '" + model_name + "'").c_str());
    for (const auto& gpu_name : gpus_axis) {
      const auto gen = gen_by_name(gpu_name);
      if (!gen) return usage(("unknown gpu '" + gpu_name + "'").c_str());
      for (const auto& nvs_s : nvs_axis) {
        for (const auto& n_s : scale_axis) {
          for (const auto& strat_s : strat_axis) {
            const auto strat = strategy_by_name(strat_s);
            if (!strat) {
              return usage(("unknown strategy '" + strat_s + "'").c_str());
            }
            for (const auto& b_s : batch_axis) {
              const std::int64_t nvs = std::stoll(nvs_s);
              const std::int64_t n = std::stoll(n_s);
              const std::int64_t b = std::stoll(b_s);
              const hw::SystemConfig sys = hw::make_system(*gen, nvs, n);
              const auto r =
                  report::optimal_at_scale(*mdl, sys, *strat, b, n);
              ++points;
              if (r.feasible) ++feasible;
              const double tps =
                  r.feasible ? static_cast<double>(b) *
                                   static_cast<double>(mdl->seq_len) /
                                   r.iteration() / static_cast<double>(n)
                             : 0.0;
              csv.write_row(std::vector<std::string>{
                  model_name, gpu_name, nvs_s, n_s, strat_s, b_s,
                  r.feasible ? "1" : "0",
                  r.feasible ? r.cfg.describe() : r.reason,
                  util::format_fixed(r.feasible ? r.iteration() : 0.0, 6),
                  util::format_fixed(tps, 1),
                  util::format_fixed(
                      r.feasible ? r.mem.total().value() / 1e9 : 0.0, 2)});
              std::cout << "[" << points << "] " << model_name << " "
                        << gpu_name << " nvs" << nvs_s << " n" << n_s << " "
                        << strat_s << " b" << b_s << ": "
                        << (r.feasible
                                ? util::format_time(r.iteration())
                                : "infeasible")
                        << "\n";
            }
          }
        }
      }
    }
  }
  std::cout << points << " sweep points (" << feasible
            << " feasible) written to " << output << "\n";
  return 0;
}
