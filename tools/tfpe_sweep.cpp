// tfpe-sweep — batch experiment runner: evaluates the optimal configuration
// over the cross product of sweep axes and writes one CSV row per point.
// This is the "figure factory" for user studies beyond the paper's set.
//
// Sweep spec (same syntax as model/system config files):
//
//   [sweep]
//   model = gpt3-1t, vit-64k      # presets, comma-separated
//   gpu = a100, b200
//   nvs = 4, 8, 64
//   oversub = 1, 4                # spine oversubscription (1 = two-level)
//   leaf = 64                     # leaf-pod size for oversub > 1 points
//   gpus = 1024, 4096, 16384
//   strategy = 1d, 2d, summa
//   batch = 4096
//   output = sweep.csv
//
// Usage: tfpe-sweep spec.tfpe [--output path] [--engine signature|legacy]
//                             [--threads N] [--batch | --no-batch]
//                             [--warm-start] [--profile-stages]
//                             [--verify-legacy] [--ablate-topology] [--arch]
//
// The hardware axes (gpu, nvs, oversub) of each (model, strategy, batch,
// gpus) slice run through search::run_sweep: candidates are enumerated once,
// compiled once into hardware-invariant cost signatures, and re-timed per
// hardware point in parallel. Oversubscription 1 keeps the canonical
// two-level fabric; ratios > 1 attach a three-level leaf/spine fabric, so
// the topology is swept exactly like the NVS-domain size. --engine legacy
// falls back to one find_optimal call per point; --verify-legacy runs both
// engines and exits nonzero unless every per-point optimum is bitwise
// identical. --ablate-topology re-runs every two-level point with its
// fabric replaced by the degenerate three-level preset (leaf = nvs, no
// oversubscription) and exits nonzero unless the optima are bitwise
// identical — the golden-equivalence contract of the topology layer.
//
// --no-batch drops the signature engine back to the PR-3 scalar placement
// walk (--batch, the default, times each candidate's placements through the
// SoA batch kernel); --warm-start seeds each grid point's incumbent from
// its chain predecessor's optimum. Both knobs change throughput only —
// every optimum stays bitwise identical. --profile-stages prints per-stage
// busy seconds (enumerate / compile / time) and their overlap factor.
//
// --arch adds the architecture axis: every model on the axis expands into
// its iso-parameter shape family (the spec's [codesign] section, or the
// defaults; see io/config_file.hpp) and each slice runs through
// search::run_codesign with the full exact per-shape matrix, one CSV row
// per (shape, hardware point) with the shape's name in the model column —
// the CSV schema is unchanged. --verify-legacy then cross-checks the
// matrix bitwise against the naive one-find_optimal-per-pair arm.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "hw/topology.hpp"
#include "io/config_file.hpp"
#include "search/codesign.hpp"
#include "search/sweep.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace {

using namespace tfpe;

int usage(const char* msg) {
  if (msg) std::cerr << "error: " << msg << "\n";
  std::cerr << "usage: tfpe-sweep spec.tfpe [--output path]\n"
               "                  [--engine signature|legacy] [--threads N]\n"
               "                  [--batch | --no-batch] [--warm-start]\n"
               "                  [--profile-stages]\n"
               "                  [--verify-legacy] [--ablate-topology]\n"
               "                  [--arch]\n"
               "see the header of tools/tfpe_sweep.cpp for the spec format\n";
  return 2;
}

std::optional<parallel::TpStrategy> strategy_by_name(const std::string& s) {
  if (s == "1d") return parallel::TpStrategy::TP1D;
  if (s == "2d") return parallel::TpStrategy::TP2D;
  if (s == "summa") return parallel::TpStrategy::Summa2D;
  return std::nullopt;
}

std::optional<hw::GpuGeneration> gen_by_name(const std::string& s) {
  if (s == "a100") return hw::GpuGeneration::A100;
  if (s == "h200") return hw::GpuGeneration::H200;
  if (s == "b200") return hw::GpuGeneration::B200;
  return std::nullopt;
}

/// One fully-resolved sweep point, in spec nesting order.
struct Point {
  std::string model, gpu, nvs, oversub, gpus, strategy, batch;
};

bool identical_optimum(const core::EvalResult& a, const core::EvalResult& b) {
  if (a.feasible != b.feasible) return false;
  if (!a.feasible) return true;
  return a.cfg.describe() == b.cfg.describe() &&
         a.iteration() == b.iteration() &&
         a.mem.total().value() == b.mem.total().value();
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().empty()) return usage("missing sweep spec");

  io::ConfigSections sections;
  try {
    std::ifstream in(args.positional().front());
    if (!in) return usage("cannot open spec file");
    sections = io::parse_config(in);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  const auto it = sections.find("sweep");
  if (it == sections.end()) return usage("spec has no [sweep] section");
  const io::Section& spec = it->second;

  auto axis = [&](const char* key, const char* fallback) {
    const auto found = spec.find(key);
    return util::split_list(found != spec.end() ? found->second : fallback);
  };
  const auto models = axis("model", "gpt3-1t");
  const auto gpus_axis = axis("gpu", "b200");
  const auto nvs_axis = axis("nvs", "8");
  const auto oversub_axis = axis("oversub", "1");
  const auto scale_axis = axis("gpus", "1024");
  const auto strat_axis = axis("strategy", "1d");
  const auto batch_axis = axis("batch", "4096");
  const auto leaf_it = spec.find("leaf");
  const std::int64_t leaf_size =
      leaf_it != spec.end() ? std::stoll(leaf_it->second) : 64;

  std::string output = args.get_or("output", "");
  if (output.empty()) {
    const auto out_it = spec.find("output");
    output = out_it != spec.end() ? out_it->second : "sweep.csv";
  }
  const std::string engine = args.get_or("engine", "signature");
  if (engine != "signature" && engine != "legacy") {
    return usage("--engine must be 'signature' or 'legacy'");
  }
  const bool verify_legacy = args.has("verify-legacy");
  const bool ablate_topology = args.has("ablate-topology");
  const bool arch = args.has("arch");
  if (arch && ablate_topology) {
    return usage("--arch and --ablate-topology are mutually exclusive");
  }
  model::ShapeFamilyOptions family_opts;
  if (const auto cs = sections.find("codesign"); cs != sections.end()) {
    try {
      family_opts = io::codesign_from_section(cs->second);
    } catch (const std::exception& e) {
      return usage(e.what());
    }
  }
  if (args.has("batch") && args.has("no-batch")) {
    return usage("--batch and --no-batch are mutually exclusive");
  }
  const bool batch = !args.has("no-batch");  // --batch is the default
  const bool warm_start = args.has("warm-start");
  const bool profile_stages = args.has("profile-stages");
  const auto threads = static_cast<unsigned>(args.get_int_or("threads", 0));

  // Validate axes up front, before any work.
  for (const auto& name : models) {
    if (!model::preset_by_name(name)) {
      return usage(("unknown model '" + name + "'").c_str());
    }
  }
  for (const auto& name : gpus_axis) {
    if (!gen_by_name(name)) return usage(("unknown gpu '" + name + "'").c_str());
  }
  for (const auto& name : strat_axis) {
    if (!strategy_by_name(name)) {
      return usage(("unknown strategy '" + name + "'").c_str());
    }
  }

  // Flatten the cross product in spec nesting order (the CSV row order), and
  // group points into hardware grids: within one (model, strategy, batch,
  // gpus) slice the gpu × nvs axes share candidates and compiled signatures,
  // so each slice is one run_sweep call.
  std::vector<Point> points;
  for (const auto& model_name : models) {
    for (const auto& gpu_name : gpus_axis) {
      for (const auto& nvs_s : nvs_axis) {
        for (const auto& os_s : oversub_axis) {
          for (const auto& n_s : scale_axis) {
            for (const auto& strat_s : strat_axis) {
              for (const auto& b_s : batch_axis) {
                points.push_back(
                    {model_name, gpu_name, nvs_s, os_s, n_s, strat_s, b_s});
              }
            }
          }
        }
      }
    }
  }

  std::vector<core::EvalResult> results(points.size());
  search::SweepStats totals;
  double sweep_seconds = 0.0;
  std::size_t mismatches = 0;
  std::size_t ablation_mismatches = 0;
  std::size_t ablation_checked = 0;

  /// --arch: one row per (shape, hardware point), shape name in the model
  /// column — appended slice by slice in spec nesting order.
  struct ArchRow {
    Point p;
    core::EvalResult r;
    std::int64_t seq_len = 0;
  };
  std::vector<ArchRow> arch_rows;

  for (const auto& model_name : models) {
    const auto mdl = model::preset_by_name(model_name);
    for (const auto& n_s : scale_axis) {
      for (const auto& strat_s : strat_axis) {
        for (const auto& b_s : batch_axis) {
          std::vector<std::size_t> slice;  // indices into `points`
          std::vector<hw::SystemConfig> grid;
          for (std::size_t i = 0; i < points.size(); ++i) {
            const Point& p = points[i];
            if (p.model != model_name || p.gpus != n_s ||
                p.strategy != strat_s || p.batch != b_s) {
              continue;
            }
            slice.push_back(i);
            // One-point call into the topology-axis grid builder so the
            // fabric attachment (oversub 1 = two-level, > 1 = leaf/spine)
            // stays in FP lockstep with search::hardware_grid.
            grid.push_back(search::hardware_grid(
                {*gen_by_name(p.gpu)}, {std::stoll(p.nvs)},
                {std::stod(p.oversub)}, std::stoll(p.gpus),
                leaf_size)[0]);
          }

          search::SweepOptions opts;
          opts.search.strategy = *strategy_by_name(strat_s);
          opts.search.global_batch = std::stoll(b_s);
          opts.search.n_gpus = std::stoll(n_s);
          opts.threads = threads;
          opts.use_signatures = engine == "signature";
          opts.batch = batch;
          opts.warm_start = warm_start;

          if (arch) {
            // Architecture axis: expand the slice's model into its
            // iso-parameter family and run the co-design engine with the
            // full exact per-shape matrix (every row must be a true
            // find_optimal result, so shape pruning stays off here).
            std::vector<model::TransformerConfig> shapes;
            try {
              shapes = model::shape_family(*mdl, family_opts);
            } catch (const std::exception& e) {
              return usage(e.what());
            }
            if (shapes.empty()) {
              return usage(("[codesign] enumerates zero shapes around " +
                            model_name)
                               .c_str());
            }
            search::CodesignOptions copts;
            copts.sweep = opts;
            copts.prune_shapes = false;
            const auto t0 = std::chrono::steady_clock::now();
            search::CodesignResult cr =
                search::run_codesign(shapes, grid, copts);
            sweep_seconds +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            totals.candidates += cr.stats.candidates;
            totals.evaluated += cr.stats.evaluated;
            totals.signature_compiles += cr.stats.signature_compiles;
            totals.signature_cache_hits += cr.stats.signature_cache_hits;
            totals.batch_calls += cr.stats.batch_calls;
            totals.batch_placements += cr.stats.batch_placements;
            totals.warm_seeded += cr.stats.warm_seeded;
            totals.warm_seed_feasible += cr.stats.warm_seed_feasible;
            totals.profile.enumerate_s += cr.stats.profile.enumerate_s;
            totals.profile.compile_s += cr.stats.profile.compile_s;
            totals.profile.time_s += cr.stats.profile.time_s;
            totals.profile.wall_s += cr.stats.profile.wall_s;

            search::CodesignResult naive;
            if (verify_legacy) {
              search::CodesignOptions other = copts;
              other.sweep.use_signatures = !copts.sweep.use_signatures;
              naive = search::run_codesign(shapes, grid, other);
            }
            for (std::size_t s = 0; s < shapes.size(); ++s) {
              for (std::size_t j = 0; j < slice.size(); ++j) {
                Point p = points[slice[j]];
                p.model = shapes[s].name;
                arch_rows.push_back(
                    {std::move(p), cr.per_shape[s][j], shapes[s].seq_len});
                if (verify_legacy &&
                    !identical_optimum(cr.per_shape[s][j],
                                       naive.per_shape[s][j])) {
                  ++mismatches;
                  std::cerr << "MISMATCH at " << shapes[s].name << " "
                            << points[slice[j]].gpu << " nvs"
                            << points[slice[j]].nvs << "\n";
                }
              }
            }
            continue;
          }

          const auto t0 = std::chrono::steady_clock::now();
          search::SweepResult sr = run_sweep(*mdl, grid, opts);
          sweep_seconds +=
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
          for (std::size_t j = 0; j < slice.size(); ++j) {
            results[slice[j]] = std::move(sr.best[j]);
          }
          totals.candidates += sr.stats.candidates;
          totals.evaluated += sr.stats.evaluated;
          totals.signature_compiles += sr.stats.signature_compiles;
          totals.signature_cache_hits += sr.stats.signature_cache_hits;
          totals.batch_calls += sr.stats.batch_calls;
          totals.batch_placements += sr.stats.batch_placements;
          totals.warm_seeded += sr.stats.warm_seeded;
          totals.warm_seed_feasible += sr.stats.warm_seed_feasible;
          totals.profile.enumerate_s += sr.stats.profile.enumerate_s;
          totals.profile.compile_s += sr.stats.profile.compile_s;
          totals.profile.time_s += sr.stats.profile.time_s;
          totals.profile.wall_s += sr.stats.profile.wall_s;

          if (verify_legacy) {
            search::SweepOptions other = opts;
            other.use_signatures = !opts.use_signatures;
            const search::SweepResult check = run_sweep(*mdl, grid, other);
            for (std::size_t j = 0; j < slice.size(); ++j) {
              if (!identical_optimum(results[slice[j]], check.best[j])) {
                ++mismatches;
                const Point& p = points[slice[j]];
                std::cerr << "MISMATCH at " << p.model << " " << p.gpu
                          << " nvs" << p.nvs << " n" << p.gpus << " "
                          << p.strategy << " b" << p.batch << "\n";
              }
            }
          }

          if (ablate_topology) {
            // Swap every two-level point's fabric for the degenerate
            // three-level preset (leaf pod = NVS domain, full bisection):
            // walking one extra level with fan-in 1 must not change a
            // single bit of the optimum.
            std::vector<hw::SystemConfig> degenerate = grid;
            std::vector<bool> swapped(grid.size(), false);
            for (std::size_t j = 0; j < grid.size(); ++j) {
              if (!grid[j].fabric.levels.empty()) continue;  // already 3-level
              degenerate[j].fabric = hw::leaf_spine_topology(
                  grid[j].net, grid[j].nvs_domain, grid[j].nvs_domain,
                  grid[j].n_gpus, 1.0);
              swapped[j] = true;
            }
            const search::SweepResult check = run_sweep(*mdl, degenerate, opts);
            for (std::size_t j = 0; j < slice.size(); ++j) {
              if (!swapped[j]) continue;
              ++ablation_checked;
              if (!identical_optimum(results[slice[j]], check.best[j])) {
                ++ablation_mismatches;
                const Point& p = points[slice[j]];
                std::cerr << "ABLATION MISMATCH at " << p.model << " "
                          << p.gpu << " nvs" << p.nvs << " n" << p.gpus
                          << " " << p.strategy << " b" << p.batch << "\n";
              }
            }
          }
        }
      }
    }
  }

  util::CsvWriter csv(output);
  csv.write_header({"model", "gpu", "nvs", "oversub", "gpus", "strategy",
                    "batch", "feasible", "config", "iter_s",
                    "tokens_per_s_per_gpu", "hbm_gb"});
  std::size_t feasible = 0;
  const std::size_t n_rows = arch ? arch_rows.size() : points.size();
  const auto emit_row = [&](std::size_t i, const Point& p,
                            const core::EvalResult& r, std::int64_t seq_len) {
    if (r.feasible) ++feasible;
    const auto n = static_cast<double>(std::stoll(p.gpus));
    const double tps =
        r.feasible ? static_cast<double>(std::stoll(p.batch)) *
                         static_cast<double>(seq_len) / r.iteration() / n
                   : 0.0;
    csv.write_row(std::vector<std::string>{
        p.model, p.gpu, p.nvs, p.oversub, p.gpus, p.strategy, p.batch,
        r.feasible ? "1" : "0", r.feasible ? r.cfg.describe() : r.reason,
        util::format_fixed(r.feasible ? r.iteration() : 0.0, 6),
        util::format_fixed(tps, 1),
        util::format_fixed(r.feasible ? r.mem.total().value() / 1e9 : 0.0,
                           2)});
    std::cout << "[" << (i + 1) << "] " << p.model << " " << p.gpu << " nvs"
              << p.nvs << " os" << p.oversub << " n" << p.gpus << " "
              << p.strategy << " b" << p.batch << ": "
              << (r.feasible ? util::format_time(r.iteration()) : "infeasible")
              << "\n";
  };
  if (arch) {
    for (std::size_t i = 0; i < arch_rows.size(); ++i) {
      emit_row(i, arch_rows[i].p, arch_rows[i].r, arch_rows[i].seq_len);
    }
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) {
      emit_row(i, points[i], results[i],
               model::preset_by_name(points[i].model)->seq_len);
    }
  }

  std::cout << n_rows << " sweep points (" << feasible
            << " feasible) written to " << output << "\n";
  const double pps = sweep_seconds > 0.0
                         ? static_cast<double>(n_rows) / sweep_seconds
                         : 0.0;
  std::printf("engine=%s  %.3fs  %.1f points/s", engine.c_str(), sweep_seconds,
              pps);
  if (engine == "signature") {
    std::printf("  compiles=%zu  compile-cache hit rate=%.1f%%",
                totals.signature_compiles, 100.0 * totals.compile_hit_rate());
    if (batch) {
      std::printf("  batch-occupancy=%.1f", totals.batch_occupancy());
    }
    if (warm_start) {
      std::printf("  warm-seeds=%zu/%zu", totals.warm_seed_feasible,
                  totals.warm_seeded);
    }
  }
  std::printf("\n");
  if (profile_stages && engine == "signature") {
    std::printf(
        "stages: enumerate=%.3fs  compile=%.3fs  time=%.3fs  wall=%.3fs  "
        "overlap=%.2fx\n",
        totals.profile.enumerate_s, totals.profile.compile_s,
        totals.profile.time_s, totals.profile.wall_s,
        totals.profile.overlap());
  }
  if (verify_legacy) {
    if (mismatches != 0) {
      std::cerr << mismatches << " grid points differ between the signature "
                << "and legacy engines\n";
      return 1;
    }
    std::cout << "verify-legacy: all " << n_rows
              << " optima bitwise identical across engines\n";
  }
  if (ablate_topology) {
    if (ablation_mismatches != 0) {
      std::cerr << ablation_mismatches << " grid points differ between the "
                << "two-level fabric and the degenerate three-level preset\n";
      return 1;
    }
    std::cout << "ablate-topology: " << ablation_checked
              << " two-level optima bitwise identical under the degenerate "
              << "three-level fabric\n";
  }
  return 0;
}
