// tfpe — command-line front end to the performance model.
//
// Examples:
//   tfpe --model gpt3-1t --gpu b200 --gpus 16384 --nvs 8 --batch 4096
//   tfpe --model vit-64k --gpu a100 --gpus 4096 --strategy 2d --top 5
//   tfpe --model llama3-405b --gpu b200 --gpus 2048 --strategy summa
//        --interleave --zero3 --csv out.csv --ops --sensitivity
//   tfpe --model custom --l 4096 --e 8192 --heads 64 --depth 32
//        --gpu h200 --gpus 512
//
// Prints the optimal configuration panel, optionally the top-k list, the
// per-op roofline report, hardware elasticities, and a CSV mirror.

#include <fstream>
#include <iostream>

#include <chrono>

#include "analysis/consistency.hpp"
#include "analysis/invariants.hpp"
#include "core/batched_signature.hpp"
#include "core/training_estimate.hpp"
#include "io/config_file.hpp"
#include "io/config_lint.hpp"
#include "io/plan_io.hpp"
#include "search/codesign.hpp"
#include "search/serve_plan.hpp"
#include "search/sweep_lint.hpp"
#include "report/breakdown_report.hpp"
#include "report/markdown_report.hpp"
#include "report/op_report.hpp"
#include "report/sensitivity.hpp"
#include "search/search.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace {

using namespace tfpe;

int usage(const char* msg) {
  if (msg) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: tfpe --model NAME --gpu {a100|h200|b200} --gpus N [options]\n"
      "\n"
      "model selection:\n"
      "  --model NAME        one of:";
  for (const auto& n : model::preset_names()) std::cerr << " " << n;
  std::cerr <<
      " | custom\n"
      "  --l --e --heads --depth [--hidden --kv-heads --window]   (custom)\n"
      "  --config PATH       load [model] and/or [system] from a file\n"
      "\n"
      "system:\n"
      "  --gpu GEN           GPU generation preset (default b200)\n"
      "  --gpus N            total GPUs (default 1024)\n"
      "  --nvs N             fast-domain size (default 8)\n"
      "\n"
      "search:\n"
      "  --strategy S        1d | 2d | summa | all (default 1d)\n"
      "  --batch B           global batch (default 4096)\n"
      "  --top K             also print the K best configurations\n"
      "  --interleave        allow interleaved pipeline schedules\n"
      "  --zero3             allow ZeRO-3 weight sharding\n"
      "  --tp-overlap F      hide fraction F of TP communication\n"
      "  --offload F         offload fraction F of activations to host\n"
      "  --recompute         full activation checkpointing\n"
      "  --plan PATH         evaluate a saved plan instead of searching\n"
      "  --save-plan PATH    write the best configuration as a plan file\n"
      "\n"
      "output:\n"
      "  --rate USD          $/GPU-hour for cost estimates (with --tokens/--samples)\n"
      "  --tokens T          report days to train on T tokens\n"
      "  --samples S         report days to train on S samples\n"
      "  --ops               per-op roofline report for the optimum\n"
      "  --sensitivity       hardware elasticities (re-searches 12 designs)\n"
      "  --csv PATH          write results as CSV\n"
      "  --markdown PATH     write a Markdown report\n"
      "\n"
      "subcommands:\n"
      "  lint [PLAN_PATH]    check built op lists against the paper's\n"
      "                      conservation laws (see: tfpe lint --help)\n"
      "  codesign            iso-parameter architecture x config search\n"
      "                      (see: tfpe codesign --help)\n"
      "  serve-plan          latency/throughput Pareto front for inference\n"
      "                      serving (see: tfpe serve-plan --help)\n";
  return msg ? 2 : 0;
}

std::optional<hw::GpuGeneration> gen_by_name(const std::string& s) {
  if (s == "a100") return hw::GpuGeneration::A100;
  if (s == "h200") return hw::GpuGeneration::H200;
  if (s == "b200") return hw::GpuGeneration::B200;
  return std::nullopt;
}

// --- `tfpe lint`: op-graph invariant analyzer front end -------------------

int lint_usage(const char* msg) {
  if (msg) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: tfpe lint [PATH] [--model NAME] [--batch N]\n"
      "                 [--format text|json|sarif] [--strict]\n"
      "                 [--suppress CODE,...]\n"
      "\n"
      "Structured diagnostics over the whole pipeline: the paper's op-graph\n"
      "conservation laws, the compiled-signature and batched-SoA lowerings,\n"
      "sweep cache-key soundness, hardware-description sanity and config-file\n"
      "schema checks. Every diagnostic carries a stable rule ID\n"
      "(TFPE-OP-001 ...; see docs/API.md for the registry).\n"
      "\n"
      "  PATH            lint a .tfpe file: schema first, then the passes its\n"
      "                  sections select ([plan] -> op graph + signature +\n"
      "                  batched lowering, [sweep] -> sweep plan,\n"
      "                  [model]/[system]/[topology] -> machine description)\n"
      "  --model NAME    model preset a [plan] applies to (default gpt3-1t)\n"
      "  --batch N       global batch for the plan (default: the plan's own);\n"
      "                  with no PATH, the per-GPU microbatch (default 2)\n"
      "  --format F      text (default) | json | sarif (SARIF 2.1.0)\n"
      "  --strict        warnings also fail (exit 3)\n"
      "  --suppress L    comma-separated rule codes or names to disable\n"
      "\n"
      "With no PATH, lints the built-in preset x strategy matrix plus the\n"
      "default sweep plan. Exit codes: 0 clean, 1 errors, 2 usage or\n"
      "unparseable input, 3 warnings under --strict.\n";
  return msg ? 2 : 0;
}

/// Render `report` in the requested format and map it to the exit code
/// contract (0 clean / 1 errors / 3 strict warnings).
int finish_lint(const analysis::LintReport& report, const std::string& format,
                bool strict) {
  if (format == "json") {
    std::cout << analysis::render_json(report) << "\n";
  } else if (format == "sarif") {
    std::cout << analysis::render_sarif(report) << "\n";
  } else {
    std::cout << analysis::render_text(report) << "\n";
  }
  if (report.errors() > 0) return 1;
  if (strict && report.warnings() > 0) return 3;
  return 0;
}

/// Parse --format/--strict/--suppress into (format, strict, LintOptions).
/// Returns false (after printing usage) on a bad flag value.
bool parse_lint_flags(const util::ArgParser& args, std::string* format,
                      bool* strict, analysis::LintOptions* opts) {
  *format = args.get_or("format", "text");
  if (*format != "text" && *format != "json" && *format != "sarif") {
    lint_usage(("unknown --format '" + *format + "'").c_str());
    return false;
  }
  *strict = args.has("strict");
  if (const auto list = args.get("suppress")) {
    for (const std::string& code : util::split_list(*list)) {
      if (!opts->rules.suppress(code)) {
        lint_usage(("unknown rule '" + code + "' in --suppress").c_str());
        return false;
      }
    }
  }
  return true;
}

parallel::ParallelConfig lint_cfg(parallel::TpStrategy s, std::int64_t n1,
                                  std::int64_t n2, std::int64_t nb = 1,
                                  bool ring = false) {
  parallel::ParallelConfig c;
  c.strategy = s;
  c.n1 = n1;
  c.n2 = n2;
  c.nb = nb;
  c.ring_attention = ring;
  return c;
}

/// Lint one .tfpe file: schema first, then the passes its sections select.
int lint_file(const std::string& path, const util::ArgParser& args,
              const std::string& format, bool strict,
              const analysis::LintOptions& opts) {
  const std::string model_name = args.get_or("model", "gpt3-1t");
  const auto mdl = model::preset_by_name(model_name);
  if (!mdl) return lint_usage(("unknown model '" + model_name + "'").c_str());

  analysis::DiagnosticSink sink(opts.rules);
  const analysis::LintReport schema = io::lint_config_file(path, opts);
  bool unparseable = false;
  for (const auto& d : schema.diagnostics) {
    if (d.id == analysis::RuleId::kConfigParse) unparseable = true;
  }
  sink.merge(schema);
  if (unparseable) {
    // A file that does not parse at all is a usage-level failure: render
    // the report (it carries the parse diagnostic) and exit 2, never the
    // old empty-but-clean 0.
    finish_lint(sink.take(), format, strict);
    return 2;
  }

  io::ConfigSections sections;
  {
    std::ifstream in(path);
    sections = io::parse_config(in);  // schema pass proved this parses
  }
  const auto fail_section = [&](const std::string& section,
                                const std::string& what) {
    sink.emit(analysis::RuleId::kConfigValue, "[" + section + "]", 0, 0, what,
              std::nullopt, path, 0);
  };

  std::int64_t batch = args.get_int_or("batch", 0);
  if (const auto it = sections.find("plan"); it != sections.end()) {
    try {
      const io::LoadedPlan plan = io::plan_from_section(it->second);
      if (batch == 0) batch = plan.global_batch;
      // Divisibility prechecks against a system just big enough for the
      // plan: the builders assume them, so a violated one is a diagnostic.
      const auto sys = hw::make_system(hw::GpuGeneration::B200,
                                       plan.cfg.placement_product(),
                                       plan.cfg.total_gpus());
      if (const auto why = plan.cfg.invalid_reason(*mdl, sys, batch)) {
        fail_section("plan", "invalid plan configuration: " + *why);
      } else {
        const std::int64_t b = plan.cfg.local_microbatch(batch);
        const parallel::LayerCost layer =
            parallel::build_layer(*mdl, plan.cfg, b);
        sink.merge(analysis::lint_layer(*mdl, plan.cfg, b, layer, opts));
        const core::CostSignature sig =
            core::compile_signature(*mdl, plan.cfg, batch, layer);
        sink.merge(analysis::lint_signature(*mdl, plan.cfg, sig, layer, opts));
        sink.merge(analysis::lint_batched(sig, core::lower_batched(sig), opts));
        sink.merge(analysis::lint_system(sys, sig, opts));
        const hw::Topology fab = sys.resolved_fabric();
        const parallel::ParallelConfig& c = plan.cfg;
        for (const comm::GroupPlacement g :
             {comm::GroupPlacement{c.n1, c.nvs1},
              comm::GroupPlacement{c.n2, c.nvs2},
              comm::GroupPlacement{c.np, c.nvsp},
              comm::GroupPlacement{c.nd, c.nvsd}}) {
          sink.merge(analysis::lint_placement(fab, g, opts));
        }
      }
    } catch (const std::exception& e) {
      fail_section("plan", e.what());
    }
  }

  if (const auto it = sections.find("sweep"); it != sections.end()) {
    try {
      const io::Section& spec = it->second;
      const auto axis = [&](const char* key, const char* fallback) {
        const auto found = spec.find(key);
        return util::split_list(found != spec.end() ? found->second
                                                    : fallback);
      };
      std::vector<hw::GpuGeneration> gens;
      for (const auto& name : axis("gpu", "b200")) {
        if (const auto gen = gen_by_name(name)) gens.push_back(*gen);
      }
      std::vector<std::int64_t> nvs;
      for (const auto& v : axis("nvs", "8")) nvs.push_back(std::stoll(v));
      std::vector<double> oversub;
      for (const auto& v : axis("oversub", "1")) {
        oversub.push_back(std::stod(v));
      }
      const auto leaf_it = spec.find("leaf");
      const std::int64_t leaf =
          leaf_it != spec.end() ? std::stoll(leaf_it->second) : 64;
      std::vector<hw::SystemConfig> points;
      for (const auto& v : axis("gpus", "1024")) {
        const auto grid = search::hardware_grid(gens, nvs, oversub,
                                                std::stoll(v), leaf);
        points.insert(points.end(), grid.begin(), grid.end());
      }
      const auto model_axis = axis("model", "gpt3-1t");
      const auto sweep_mdl = model::preset_by_name(
          model_axis.empty() ? "gpt3-1t" : model_axis.front());
      sink.merge(search::lint_sweep_plan(sweep_mdl ? *sweep_mdl : *mdl,
                                         points, search::SweepOptions{},
                                         opts));
    } catch (const std::exception& e) {
      fail_section("sweep", e.what());
    }
  }

  if (!sections.count("plan") && !sections.count("sweep") &&
      !sections.count("model") && !sections.count("system") &&
      !sections.count("topology")) {
    sink.emit(analysis::RuleId::kConfigMissingKey, "<file>", 0, 0,
              "no [plan], [sweep], [model], [system] or [topology] section "
              "to lint",
              std::nullopt, path, 0);
  }

  if (format == "text") {
    std::cout << "lint " << path << "\n";
  }
  return finish_lint(sink.take(), format, strict);
}

int run_lint(const util::ArgParser& args) {
  if (args.has("help")) return lint_usage(nullptr);
  const auto& pos = args.positional();
  if (pos.size() > 2) return lint_usage("too many arguments");

  std::string format;
  bool strict = false;
  analysis::LintOptions opts;
  if (!parse_lint_flags(args, &format, &strict, &opts)) return 2;

  // --strict takes no value, but the parser's "--flag value" rule swallows
  // a following PATH operand into it ("lint --strict plan.tfpe") — reclaim
  // it so flag order never changes which artifact gets linted.
  std::string path = pos.size() == 2 ? pos[1] : "";
  if (const auto v = args.get("strict"); v && !v->empty()) {
    if (!path.empty()) return lint_usage("too many arguments");
    path = *v;
  }

  if (!path.empty()) {
    const int rc = lint_file(path, args, format, strict, opts);
    const auto stray = args.unused();
    if (!stray.empty()) {
      return lint_usage(("unknown flag --" + stray.front()).c_str());
    }
    return rc;
  }

  // No file: lint the preset x strategy matrix (op graph + signature +
  // batched lowering per case), the default system and the default sweep
  // plan, aggregated into one report.
  const std::int64_t b = args.get_int_or("batch", 2);
  const auto stray = args.unused();
  if (!stray.empty()) {
    return lint_usage(("unknown flag --" + stray.front()).c_str());
  }
  if (b < 1) return lint_usage("--batch must be >= 1");

  using parallel::TpStrategy;
  struct Case {
    model::TransformerConfig mdl;
    std::string label;
    parallel::ParallelConfig cfg;
  };
  std::vector<Case> cases;
  for (const auto& mdl : {model::gpt3_1t(), model::vit_64k()}) {
    cases.push_back({mdl, "1d", lint_cfg(TpStrategy::TP1D, 8, 1)});
    cases.push_back({mdl, "2d", lint_cfg(TpStrategy::TP2D, 8, 2)});
    cases.push_back({mdl, "summa", lint_cfg(TpStrategy::Summa2D, 4, 4, 4)});
    cases.push_back(
        {mdl, "2d+ring", lint_cfg(TpStrategy::TP2D, 8, 2, 1, true)});
  }
  cases.push_back({model::gpt_moe_1t(), "1d", lint_cfg(TpStrategy::TP1D, 8, 1)});
  cases.push_back({model::gpt_moe_1t(), "2d", lint_cfg(TpStrategy::TP2D, 8, 2)});

  analysis::DiagnosticSink sink(opts.rules);
  const bool text = format == "text";
  for (const auto& c : cases) {
    analysis::LintReport report;
    try {
      const parallel::LayerCost layer = parallel::build_layer(c.mdl, c.cfg, b);
      analysis::DiagnosticSink case_sink(opts.rules);
      case_sink.merge(analysis::lint_layer(c.mdl, c.cfg, b, layer, opts));
      // The matrix configs use nd = m = 1, so global batch == microbatch.
      const core::CostSignature sig =
          core::compile_signature(c.mdl, c.cfg, b, layer);
      case_sink.merge(analysis::lint_signature(c.mdl, c.cfg, sig, layer, opts));
      case_sink.merge(analysis::lint_batched(sig, core::lower_batched(sig), opts));
      report = case_sink.take();
    } catch (const std::exception& e) {
      analysis::DiagnosticSink fail(opts.rules);
      fail.emit(analysis::RuleId::kOpSequence, "<layer>", 0, 0,
                std::string("cannot build layer: ") + e.what());
      report = fail.take();
    }
    if (text) {
      std::cout << (report.errors() > 0 ? "FAIL  " : "ok    ") << c.mdl.name
                << " x " << c.label << "\n";
      if (!report.clean()) std::cout << report.summary() << "\n";
    }
    sink.merge(std::move(report));
  }

  // Default machine description + sweep plan, so the SYS/TOPO/SWEEP rule
  // families run on every bare `tfpe lint`.
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 1024);
  sink.merge(analysis::lint_system(sys, opts));
  sink.merge(search::lint_sweep_plan(model::gpt3_1t(), {sys},
                                     search::SweepOptions{}, opts));

  if (text) std::cout << cases.size() << " op lists linted\n";
  return finish_lint(sink.take(), format, strict);
}

// --- `tfpe codesign`: architecture x configuration co-design search -------

int codesign_usage(const char* msg) {
  if (msg) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: tfpe codesign [--model NAME | --config PATH] [options]\n"
      "\n"
      "Enumerates every transformer shape within a tolerance of the base\n"
      "model's parameter budget ([codesign] axes in the config file, or the\n"
      "defaults), crosses the family with a gpu x nvs hardware grid and\n"
      "reports, per grid point, the winning (shape, parallelization,\n"
      "placement) triple. Every reported result is bitwise identical to\n"
      "find_optimal on that (shape, point); shapes whose architecture-level\n"
      "compute floor exceeds the cross-shape incumbent are pruned whole.\n"
      "\n"
      "  --model NAME        base preset the family is iso to (default gpt3-1t)\n"
      "  --config PATH       load [model] and/or [codesign] from a file\n"
      "  --target-params B   override the parameter budget [billions]\n"
      "  --tolerance F       override the relative band (default 0.02)\n"
      "  --gpu LIST          generations to grid (default a100,h200,b200)\n"
      "  --nvs LIST          NVS-domain sizes to grid (default 8)\n"
      "  --gpus N            total GPUs (default 1024)\n"
      "  --batch B           global batch (default 4096)\n"
      "  --threads N         worker threads (0 = hardware concurrency)\n"
      "  --no-prune-shapes   keep the full exact per-shape matrix\n"
      "  --no-batch          scalar placement walk (A/B baseline)\n"
      "  --no-warm-start     cold incumbents (A/B baseline)\n"
      "  --verify-per-shape  cross-check every scanned (shape, point) and\n"
      "                      winner bitwise against per-shape find_optimal;\n"
      "                      exits nonzero on any mismatch\n"
      "  --csv PATH          write per-point winners as CSV\n";
  return msg ? 2 : 0;
}

int run_codesign_cmd(const util::ArgParser& args) {
  if (args.has("help")) return codesign_usage(nullptr);

  io::LoadedConfig file_cfg;
  if (const auto path = args.get("config")) {
    try {
      file_cfg = io::load_config_file(*path);
    } catch (const std::exception& e) {
      return codesign_usage(e.what());
    }
  }
  model::TransformerConfig base;
  const std::string model_name =
      args.get_or("model", file_cfg.model ? "from-config" : "gpt3-1t");
  if (model_name == "from-config") {
    base = *file_cfg.model;
  } else if (const auto preset = model::preset_by_name(model_name)) {
    base = *preset;
  } else {
    return codesign_usage(("unknown model '" + model_name + "'").c_str());
  }

  model::ShapeFamilyOptions fam =
      file_cfg.codesign ? *file_cfg.codesign : model::ShapeFamilyOptions{};
  if (args.has("target-params")) {
    fam.target_params = static_cast<std::int64_t>(
        args.get_double_or("target-params", 0.0) * 1e9);
  }
  if (args.has("tolerance")) {
    fam.tolerance = args.get_double_or("tolerance", fam.tolerance);
  }

  std::vector<hw::GpuGeneration> gens;
  for (const auto& name :
       util::split_list(args.get_or("gpu", "a100,h200,b200"))) {
    const auto gen = gen_by_name(name);
    if (!gen) return codesign_usage(("unknown gpu '" + name + "'").c_str());
    gens.push_back(*gen);
  }
  std::vector<std::int64_t> nvs;
  for (const auto& v : util::split_list(args.get_or("nvs", "8"))) {
    nvs.push_back(std::stoll(v));
  }
  const std::int64_t n_gpus = args.get_int_or("gpus", 1024);

  search::CodesignOptions opts;
  opts.sweep.search.global_batch = args.get_int_or("batch", 4096);
  opts.sweep.threads = static_cast<unsigned>(args.get_int_or("threads", 0));
  opts.sweep.batch = !args.has("no-batch");
  opts.sweep.warm_start = !args.has("no-warm-start");
  opts.prune_shapes = !args.has("no-prune-shapes");
  const bool verify = args.has("verify-per-shape");
  const std::string csv = args.get_or("csv", "");

  const auto stray = args.unused();
  if (!stray.empty()) {
    return codesign_usage(("unknown flag --" + stray.front()).c_str());
  }

  std::vector<model::TransformerConfig> shapes;
  try {
    shapes = model::shape_family(base, fam);
  } catch (const std::exception& e) {
    return codesign_usage(e.what());
  }
  const std::int64_t target =
      fam.target_params > 0 ? fam.target_params : base.total_params();
  std::cout << "Family: " << shapes.size() << " shapes iso to "
            << util::format_fixed(static_cast<double>(target) / 1e9, 1)
            << "B params (+/-"
            << util::format_fixed(100.0 * fam.tolerance, 1) << "%) around "
            << base.name << "\n";
  if (shapes.empty()) {
    std::cerr << "empty shape family — widen the axes or the tolerance\n";
    return 1;
  }
  const auto points = search::hardware_grid(gens, nvs, n_gpus);
  std::cout << "Grid:   " << points.size() << " hardware points x "
            << shapes.size() << " shapes, batch "
            << opts.sweep.search.global_batch << ", " << n_gpus << " GPUs\n\n";

  const auto t0 = std::chrono::steady_clock::now();
  search::CodesignResult run;
  try {
    run = search::run_codesign(shapes, points, opts);
  } catch (const std::exception& e) {
    return codesign_usage(e.what());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<report::LabeledResult> rows;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const auto& w = run.best[p];
    const std::string label = points[p].gpu.name + " nvs" +
                              std::to_string(points[p].nvs_domain);
    if (w.shape == search::CodesignResult::kNoShape) {
      std::cout << label << ": no feasible shape\n";
      continue;
    }
    std::cout << label << ": " << shapes[w.shape].name << " — "
              << util::format_time(w.best.iteration()) << "/iteration, "
              << w.best.cfg.describe() << "\n";
    rows.push_back({label + " " + shapes[w.shape].name, w.best});
  }

  const auto& st = run.stats;
  std::printf(
      "\n%zu shape-points: %zu floor-pruned, %zu scanned (%zu feasible)  "
      "%.3fs  %.1f shape-points/s\n",
      st.shapes * st.points, st.shapes_pruned, st.shapes_evaluated,
      st.feasible_shape_points, seconds,
      seconds > 0 ? static_cast<double>(st.shapes * st.points) / seconds : 0.0);
  std::printf(
      "enumerations=%zu (%zu memo hits)  candidates=%zu  evaluated=%zu  "
      "bound-pruned=%zu  warm-seeds=%zu/%zu\n",
      st.enumerations, st.enumeration_hits, st.candidates, st.evaluated,
      st.bound_pruned, st.warm_seed_feasible, st.warm_seeded);

  if (verify) {
    // Legacy-style cross-check: one find_optimal per (shape, point), the
    // winner re-derived by the same shape-order reduction. Every scanned
    // matrix entry and every winner must match bitwise.
    std::size_t mismatches = 0;
    for (std::size_t p = 0; p < points.size(); ++p) {
      core::EvalResult ref;
      std::size_t ref_shape = search::CodesignResult::kNoShape;
      for (std::size_t s = 0; s < shapes.size(); ++s) {
        search::SearchOptions per_point = opts.sweep.search;
        per_point.threads = opts.sweep.threads;
        const auto direct =
            search::find_optimal(shapes[s], points[p], per_point);
        if (search::better_result(direct.best, ref)) {
          ref = direct.best;
          ref_shape = s;
        }
        if (run.pruned[s][p]) continue;
        const auto& got = run.per_shape[s][p];
        const bool same =
            direct.best.feasible == got.feasible &&
            (!got.feasible ||
             (direct.best.cfg.describe() == got.cfg.describe() &&
              direct.best.iteration() == got.iteration() &&
              direct.best.mem.total().value() == got.mem.total().value()));
        if (!same) {
          ++mismatches;
          std::cerr << "MISMATCH at " << shapes[s].name << " x "
                    << points[p].gpu.name << " nvs" << points[p].nvs_domain
                    << "\n";
        }
      }
      const auto& w = run.best[p];
      const bool winner_same =
          ref_shape == w.shape &&
          (ref_shape == search::CodesignResult::kNoShape ||
           (ref.cfg.describe() == w.best.cfg.describe() &&
            ref.iteration() == w.best.iteration() &&
            ref.mem.total().value() == w.best.mem.total().value()));
      if (!winner_same) {
        ++mismatches;
        std::cerr << "WINNER MISMATCH at " << points[p].gpu.name << " nvs"
                  << points[p].nvs_domain << "\n";
      }
    }
    if (mismatches != 0) {
      std::cerr << mismatches
                << " results differ from per-shape find_optimal\n";
      return 1;
    }
    std::cout << "verify-per-shape: all scanned results and winners bitwise "
                 "identical to find_optimal\n";
  }

  if (!csv.empty()) {
    report::write_results_csv(csv, rows);
    std::cout << "CSV written to " << csv << "\n";
  }
  return 0;
}

// --- `tfpe serve-plan`: inference latency/throughput Pareto search --------

int serve_usage(const char* msg) {
  if (msg) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: tfpe serve-plan [--model NAME | --config PATH] [options]\n"
      "\n"
      "Sweeps serving replica shapes (tensor x pipeline parallelism x\n"
      "resident batch) for a decode workload under a continuous-batching\n"
      "scheduler and prints the latency/throughput Pareto front: the shapes\n"
      "no other shape beats on both request latency and tok/s/GPU. Every\n"
      "point holds its KV cache resident under the HBM cap ([serving]\n"
      "kv_cap_fraction); the requested batch is clipped to what fits.\n"
      "\n"
      "  --model NAME        model preset (default llama3-405b)\n"
      "  --config PATH       load [model]/[system]/[serving] from a file\n"
      "  --gpu GEN           GPU generation preset (default h200)\n"
      "  --nvs N             fast-domain size (default 8)\n"
      "  --gpus N            total GPUs, for the replica-count line (default\n"
      "                      one replica's worth)\n"
      "  --prompt N          input tokens per request (default 2048)\n"
      "  --output N          generated tokens per request (default 256)\n"
      "  --tp LIST           tensor-parallel widths (default 1,2,4,8)\n"
      "  --pp LIST           pipeline depths (default 1)\n"
      "  --batch LIST        requested batches (default 1,...,256)\n"
      "  --kv-cap F          HBM fraction for KV + weights (default 0.9)\n"
      "  --all               print every feasible point, not just the front\n"
      "  --csv PATH          write the evaluated grid as CSV\n";
  return msg ? 2 : 0;
}

/// One printed row of the serve-plan table.
void print_serve_row(const core::InferenceEstimate& e, bool on_front) {
  std::printf("%s tp%-2lld pp%-2lld batch %-4lld R=%-4lld  "
              "ttft %8s  tpot %8s  %8.1f tok/s/gpu  %5.1f%% prefill  "
              "kv %5.1f GB\n",
              on_front ? "*" : " ", static_cast<long long>(e.cfg.tp),
              static_cast<long long>(e.cfg.pp),
              static_cast<long long>(e.cfg.batch),
              static_cast<long long>(e.admitted_batch),
              util::format_time(e.ttft).c_str(),
              util::format_time(e.tpot).c_str(), e.tokens_per_sec_per_gpu,
              100.0 * e.prefill_fraction, e.mem.kv_cache.value() / 1e9);
}

int run_serve_plan_cmd(const util::ArgParser& args) {
  if (args.has("help")) return serve_usage(nullptr);

  io::LoadedConfig file_cfg;
  if (const auto path = args.get("config")) {
    try {
      file_cfg = io::load_config_file(*path);
    } catch (const std::exception& e) {
      return serve_usage(e.what());
    }
  }
  model::TransformerConfig mdl;
  const std::string model_name =
      args.get_or("model", file_cfg.model ? "from-config" : "llama3-405b");
  if (model_name == "from-config") {
    mdl = *file_cfg.model;
  } else if (const auto preset = model::preset_by_name(model_name)) {
    mdl = *preset;
  } else {
    return serve_usage(("unknown model '" + model_name + "'").c_str());
  }

  hw::SystemConfig sys;
  if (file_cfg.system) {
    sys = *file_cfg.system;
  } else {
    sys = hw::make_system(hw::GpuGeneration::H200, 8, 8);
  }
  if (const auto name = args.get("gpu")) {
    const auto gen = gen_by_name(*name);
    if (!gen) return serve_usage("unknown --gpu (a100|h200|b200)");
    const auto fresh = hw::make_system(*gen, sys.nvs_domain, sys.n_gpus);
    sys.gpu = fresh.gpu;
    sys.net = fresh.net;
  }
  if (args.has("nvs")) sys.nvs_domain = args.get_int_or("nvs", sys.nvs_domain);
  if (args.has("gpus")) sys.n_gpus = args.get_int_or("gpus", sys.n_gpus);

  core::ServingSpec spec =
      file_cfg.serving ? *file_cfg.serving : core::ServingSpec{};
  if (args.has("prompt")) {
    spec.prompt_len = args.get_int_or("prompt", spec.prompt_len);
  }
  if (args.has("output")) {
    spec.output_len = args.get_int_or("output", spec.output_len);
  }
  const auto int_list_flag = [&](const char* flag,
                                 std::vector<std::int64_t>& axis) -> bool {
    const auto v = args.get(flag);
    if (!v) return true;
    axis.clear();
    for (const auto& item : util::split_list(*v)) {
      try {
        axis.push_back(std::stoll(item));
      } catch (const std::exception&) {
        return false;
      }
      if (axis.back() < 1) return false;
    }
    return !axis.empty();
  };
  if (!int_list_flag("tp", spec.tp)) {
    return serve_usage("--tp needs positive integers");
  }
  if (!int_list_flag("pp", spec.pp)) {
    return serve_usage("--pp needs positive integers");
  }
  if (!int_list_flag("batch", spec.batch)) {
    return serve_usage("--batch needs positive integers");
  }
  if (args.has("kv-cap")) {
    spec.kv_cap_fraction = args.get_double_or("kv-cap", spec.kv_cap_fraction);
    if (!(spec.kv_cap_fraction > 0.0) || spec.kv_cap_fraction > 1.0) {
      return serve_usage("--kv-cap must lie in (0, 1]");
    }
  }
  const bool show_all = args.has("all");
  const std::string csv = args.get_or("csv", "");
  const auto stray = args.unused();
  if (!stray.empty()) {
    return serve_usage(("unknown flag --" + stray.front()).c_str());
  }

  std::cout << "Serving " << mdl.name << " on " << sys.gpu.name << " nvs"
            << sys.nvs_domain << ": prompt " << spec.prompt_len << " + "
            << spec.output_len << " output tokens, KV cap "
            << util::format_fixed(100.0 * spec.kv_cap_fraction, 0)
            << "% of HBM\n\n";

  search::ServePlanOptions opts;
  opts.spec = spec;
  search::ServePlanResult run;
  try {
    run = search::run_serve_plan(mdl, sys, opts);
  } catch (const std::exception& e) {
    return serve_usage(e.what());
  }

  // Re-assert the KV-residency contract on every point we are about to
  // report: the estimator must have kept weights + activations + R
  // reservations inside HBM and inside the cap. A violation is a bug, not
  // a user error — fail loudly.
  std::size_t violations = 0;
  for (const auto& e : run.points) {
    if (!e.feasible) continue;
    const double hbm = sys.gpu.hbm_capacity.value();
    const bool resident = e.mem.total().value() <= hbm &&
                          e.mem.kv_cache.value() <=
                              spec.kv_cap_fraction * hbm &&
                          e.admitted_batch >= 1 &&
                          e.admitted_batch <= e.cfg.batch;
    if (!resident) {
      ++violations;
      std::cerr << "KV residency violated at tp" << e.cfg.tp << " pp"
                << e.cfg.pp << " batch " << e.cfg.batch << "\n";
    }
  }
  if (violations != 0) {
    std::cerr << violations << " reported points violate KV residency\n";
    return 1;
  }

  std::vector<bool> on_front(run.points.size(), false);
  for (const std::size_t i : run.front) on_front[i] = true;
  const auto write_csv = [&] {
    if (csv.empty()) return;
    std::ofstream out(csv);
    out << "tp,pp,batch,admitted,feasible,on_front,ttft_s,tpot_s,"
           "request_latency_s,tok_s,tok_s_gpu,prefill_fraction,kv_gb,"
           "total_gb,decode_floor_s,reason\n";
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      const auto& e = run.points[i];
      out << e.cfg.tp << ',' << e.cfg.pp << ',' << e.cfg.batch << ','
          << e.admitted_batch << ',' << (e.feasible ? 1 : 0) << ','
          << (on_front[i] ? 1 : 0) << ',' << e.ttft << ',' << e.tpot << ','
          << e.request_latency << ',' << e.tokens_per_sec << ','
          << e.tokens_per_sec_per_gpu << ',' << e.prefill_fraction << ','
          << e.mem.kv_cache.value() / 1e9 << ','
          << e.mem.total().value() / 1e9 << ',' << e.decode_floor << ",\""
          << e.reason << "\"\n";
    }
    std::cout << "CSV written to " << csv << "\n";
  };
  if (show_all) {
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      if (run.points[i].feasible) print_serve_row(run.points[i], on_front[i]);
    }
  } else {
    for (const std::size_t i : run.front) {
      print_serve_row(run.points[i], true);
    }
  }
  if (run.front.empty()) {
    write_csv();
    std::cerr << "no feasible serving shape — the KV budget admits no "
                 "resident request on this system\n";
    return 1;
  }
  const auto& fastest = run.points[run.front.front()];
  const auto& densest = run.points[run.front.back()];
  const std::int64_t replicas =
      std::max<std::int64_t>(1, sys.n_gpus / (densest.cfg.tp *
                                              densest.cfg.pp));
  std::printf(
      "\n%zu/%zu grid points feasible, %zu on the front "
      "(%zu prefill lowerings, %zu cache hits)\n",
      run.stats.feasible, run.stats.evaluated, run.front.size(),
      run.stats.signature_compiles, run.stats.signature_reuses);
  std::printf(
      "fastest: tp%lld pp%lld @ %s/request   densest: tp%lld pp%lld @ %.1f "
      "tok/s/gpu (%lld replicas -> %.0f tok/s)\n",
      static_cast<long long>(fastest.cfg.tp),
      static_cast<long long>(fastest.cfg.pp),
      util::format_time(fastest.request_latency).c_str(),
      static_cast<long long>(densest.cfg.tp),
      static_cast<long long>(densest.cfg.pp),
      densest.tokens_per_sec_per_gpu, static_cast<long long>(replicas),
      densest.tokens_per_sec * static_cast<double>(replicas));

  write_csv();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (!args.positional().empty() && args.positional().front() == "lint") {
    return run_lint(args);
  }
  if (!args.positional().empty() && args.positional().front() == "codesign") {
    return run_codesign_cmd(args);
  }
  if (!args.positional().empty() &&
      args.positional().front() == "serve-plan") {
    return run_serve_plan_cmd(args);
  }
  if (args.has("help")) return usage(nullptr);

  // --- config file (flags still override the GPU-count style fields) ---
  io::LoadedConfig file_cfg;
  if (const auto path = args.get("config")) {
    try {
      file_cfg = io::load_config_file(*path);
    } catch (const std::exception& e) {
      return usage(e.what());
    }
  }

  // --- model ---
  const std::string model_name =
      args.get_or("model", file_cfg.model ? "from-config" : "gpt3-1t");
  model::TransformerConfig mdl;
  if (model_name == "from-config") {
    mdl = *file_cfg.model;
  } else if (model_name == "custom") {
    mdl.name = "custom";
    mdl.seq_len = args.get_int_or("l", 0);
    mdl.embed = args.get_int_or("e", 0);
    mdl.heads = args.get_int_or("heads", 0);
    mdl.depth = args.get_int_or("depth", 0);
    mdl.hidden = args.get_int_or("hidden", 4 * mdl.embed);
    mdl.kv_heads = args.get_int_or("kv-heads", 0);
    if (args.has("window")) {
      mdl.attention = model::AttentionKind::kWindowed;
      mdl.window = args.get_int_or("window", 0);
    }
    try {
      mdl.validate();
    } catch (const std::exception& e) {
      return usage(e.what());
    }
  } else if (auto preset = model::preset_by_name(model_name)) {
    mdl = *preset;
  } else {
    return usage(("unknown model '" + model_name + "'").c_str());
  }

  // --- system ---
  hw::SystemConfig sys;
  if (file_cfg.system) {
    sys = *file_cfg.system;
    if (args.has("gpus")) sys.n_gpus = args.get_int_or("gpus", sys.n_gpus);
    if (args.has("nvs")) sys.nvs_domain = args.get_int_or("nvs", sys.nvs_domain);
    (void)args.get("gpu");  // config file wins; mark as consumed
  } else {
    const auto gen = gen_by_name(args.get_or("gpu", "b200"));
    if (!gen) return usage("unknown --gpu (a100|h200|b200)");
    sys = hw::make_system(*gen, args.get_int_or("nvs", 8),
                          args.get_int_or("gpus", 1024));
  }

  // --- search options ---
  const std::string strat = args.get_or("strategy", "1d");
  std::vector<parallel::TpStrategy> strategies;
  if (strat == "1d") strategies = {parallel::TpStrategy::TP1D};
  else if (strat == "2d") strategies = {parallel::TpStrategy::TP2D};
  else if (strat == "summa") strategies = {parallel::TpStrategy::Summa2D};
  else if (strat == "all") {
    strategies = {parallel::TpStrategy::TP1D, parallel::TpStrategy::TP2D,
                  parallel::TpStrategy::Summa2D};
  } else {
    return usage("unknown --strategy (1d|2d|summa|all)");
  }

  search::SearchOptions opts;
  opts.global_batch = args.get_int_or("batch", 4096);
  opts.top_k = static_cast<std::size_t>(args.get_int_or("top", 0));
  if (args.has("interleave")) opts.interleave_candidates = {1, 2, 4, 8};
  opts.allow_zero3 = args.has("zero3");
  opts.eval.tp_overlap = args.get_double_or("tp-overlap", 0.0);
  opts.eval.activation_offload = args.get_double_or("offload", 0.0);
  opts.eval.activation_recompute = args.has("recompute");
  const std::string plan_path = args.get_or("plan", "");
  const std::string save_plan = args.get_or("save-plan", "");
  const double tokens = args.get_double_or("tokens", 0.0);
  const double samples = args.get_double_or("samples", 0.0);
  const double rate = args.get_double_or("rate", 0.0);
  const bool want_ops = args.has("ops");
  const bool want_sens = args.has("sensitivity");
  const std::string csv = args.get_or("csv", "");
  const std::string markdown = args.get_or("markdown", "");

  const auto stray = args.unused();
  if (!stray.empty()) {
    return usage(("unknown flag --" + stray.front()).c_str());
  }

  std::cout << "Model:  " << mdl.name << " ("
            << util::format_fixed(mdl.total_params() / 1e9, 1)
            << "B params, l=" << mdl.seq_len << ", e=" << mdl.embed
            << ", h=" << mdl.heads << ", d=" << mdl.depth << ")\n";
  std::cout << "System: " << sys.describe() << "\n\n";

  std::vector<report::LabeledResult> rows;
  core::EvalResult best;
  parallel::TpStrategy best_strategy = strategies.front();
  if (!plan_path.empty()) {
    // Evaluate a saved plan directly, skipping the search.
    try {
      const io::LoadedPlan plan = io::load_plan_file(plan_path);
      opts.global_batch = plan.global_batch;
      best = core::evaluate(mdl, sys, plan.cfg, plan.global_batch, opts.eval);
      best_strategy = plan.cfg.strategy;
      rows.push_back({"plan", best});
    } catch (const std::exception& e) {
      return usage(e.what());
    }
  } else
  for (auto s : strategies) {
    opts.strategy = s;
    const auto found = search::find_optimal(mdl, sys, opts);
    rows.push_back({parallel::to_string(s), found.best});
    if (found.best.feasible &&
        (!best.feasible || found.best.iteration() < best.iteration())) {
      best = found.best;
      best_strategy = s;
    }
    if (opts.top_k > 0 && found.best.feasible) {
      for (std::size_t i = 1; i < found.top.size(); ++i) {
        rows.push_back({"  #" + std::to_string(i + 1), found.top[i]});
      }
    }
  }
  report::print_panels(std::cout, "optimal configurations", rows);

  if (!best.feasible) {
    std::cout << "No feasible configuration: " << best.reason << "\n";
    return 1;
  }
  std::cout << "Best: " << best.cfg.describe() << " — "
            << util::format_time(best.iteration()) << "/iteration\n";

  auto report_budget = [&](const core::TrainingEstimate& est,
                           const std::string& what) {
    const core::CostEstimate cost = core::estimate_cost(
        sys, sys.n_gpus, est.total_seconds, 1.3, rate);
    std::cout << "Training on " << what << ": "
              << util::format_fixed(est.days, 1) << " days, "
              << util::format_fixed(cost.gpu_hours / 1e6, 2) << "M GPU-hours, "
              << util::format_fixed(cost.energy_mwh, 0) << " MWh";
    if (rate > 0) {
      std::cout << ", $" << util::format_fixed(cost.cost_usd / 1e6, 1) << "M";
    }
    std::cout << "\n";
  };
  if (tokens > 0) {
    report_budget(core::estimate_token_training(mdl, opts.global_batch,
                                                best.iteration(), tokens),
                  std::to_string(tokens) + " tokens");
  }
  if (samples > 0) {
    report_budget(core::estimate_sample_training(opts.global_batch,
                                                 best.iteration(), samples),
                  std::to_string(samples) + " samples");
  }

  if (want_ops) {
    std::cout << '\n';
    report::print_op_report(std::cout, mdl, sys, best.cfg, opts.global_batch);
  }

  if (want_sens) {
    std::cout << "\nHardware elasticities (d log time / d log parameter):\n";
    for (const auto& s : report::hardware_sensitivities(
             mdl, sys, best_strategy, opts.global_batch)) {
      std::cout << "  " << s.parameter << ": "
                << util::format_fixed(s.elasticity, 3) << "\n";
    }
  }

  if (!csv.empty()) {
    report::write_results_csv(csv, rows);
    std::cout << "\nCSV written to " << csv << "\n";
  }
  if (!save_plan.empty()) {
    io::write_plan_file(save_plan, best, opts.global_batch);
    std::cout << "Plan written to " << save_plan << "\n";
  }
  if (!markdown.empty()) {
    report::write_markdown_report_file(
        markdown, "tfpe plan: " + mdl.name,
        {"Model: " + mdl.name, "System: " + sys.describe(),
         "Global batch: " + std::to_string(opts.global_batch)},
        rows);
    std::cout << "Markdown report written to " << markdown << "\n";
  }
  return 0;
}
