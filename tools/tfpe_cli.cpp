// tfpe — command-line front end to the performance model.
//
// Examples:
//   tfpe --model gpt3-1t --gpu b200 --gpus 16384 --nvs 8 --batch 4096
//   tfpe --model vit-64k --gpu a100 --gpus 4096 --strategy 2d --top 5
//   tfpe --model llama3-405b --gpu b200 --gpus 2048 --strategy summa
//        --interleave --zero3 --csv out.csv --ops --sensitivity
//   tfpe --model custom --l 4096 --e 8192 --heads 64 --depth 32
//        --gpu h200 --gpus 512
//
// Prints the optimal configuration panel, optionally the top-k list, the
// per-op roofline report, hardware elasticities, and a CSV mirror.

#include <iostream>

#include "analysis/invariants.hpp"
#include "core/training_estimate.hpp"
#include "io/config_file.hpp"
#include "io/plan_io.hpp"
#include "report/breakdown_report.hpp"
#include "report/markdown_report.hpp"
#include "report/op_report.hpp"
#include "report/sensitivity.hpp"
#include "search/search.hpp"
#include "util/args.hpp"
#include "util/units.hpp"

namespace {

using namespace tfpe;

int usage(const char* msg) {
  if (msg) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: tfpe --model NAME --gpu {a100|h200|b200} --gpus N [options]\n"
      "\n"
      "model selection:\n"
      "  --model NAME        one of:";
  for (const auto& n : model::preset_names()) std::cerr << " " << n;
  std::cerr <<
      " | custom\n"
      "  --l --e --heads --depth [--hidden --kv-heads --window]   (custom)\n"
      "  --config PATH       load [model] and/or [system] from a file\n"
      "\n"
      "system:\n"
      "  --gpu GEN           GPU generation preset (default b200)\n"
      "  --gpus N            total GPUs (default 1024)\n"
      "  --nvs N             fast-domain size (default 8)\n"
      "\n"
      "search:\n"
      "  --strategy S        1d | 2d | summa | all (default 1d)\n"
      "  --batch B           global batch (default 4096)\n"
      "  --top K             also print the K best configurations\n"
      "  --interleave        allow interleaved pipeline schedules\n"
      "  --zero3             allow ZeRO-3 weight sharding\n"
      "  --tp-overlap F      hide fraction F of TP communication\n"
      "  --offload F         offload fraction F of activations to host\n"
      "  --recompute         full activation checkpointing\n"
      "  --plan PATH         evaluate a saved plan instead of searching\n"
      "  --save-plan PATH    write the best configuration as a plan file\n"
      "\n"
      "output:\n"
      "  --rate USD          $/GPU-hour for cost estimates (with --tokens/--samples)\n"
      "  --tokens T          report days to train on T tokens\n"
      "  --samples S         report days to train on S samples\n"
      "  --ops               per-op roofline report for the optimum\n"
      "  --sensitivity       hardware elasticities (re-searches 12 designs)\n"
      "  --csv PATH          write results as CSV\n"
      "  --markdown PATH     write a Markdown report\n"
      "\n"
      "subcommands:\n"
      "  lint [PLAN_PATH]    check built op lists against the paper's\n"
      "                      conservation laws (see: tfpe lint --help)\n";
  return msg ? 2 : 0;
}

std::optional<hw::GpuGeneration> gen_by_name(const std::string& s) {
  if (s == "a100") return hw::GpuGeneration::A100;
  if (s == "h200") return hw::GpuGeneration::H200;
  if (s == "b200") return hw::GpuGeneration::B200;
  return std::nullopt;
}

// --- `tfpe lint`: op-graph invariant analyzer front end -------------------

int lint_usage(const char* msg) {
  if (msg) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: tfpe lint [PLAN_PATH] [--model NAME] [--batch N]\n"
      "\n"
      "Re-derives the paper's conservation laws (FLOP invariance, activation\n"
      "partition sums, Table I/II/A2 collective volumes, producer/consumer\n"
      "shape chaining, forward/backward conjugacy) for the built layer op\n"
      "list and reports every violation.\n"
      "\n"
      "  PLAN_PATH     lint the configuration stored in a plan file\n"
      "  --model NAME  model preset the plan applies to (default gpt3-1t)\n"
      "  --batch N     global batch for the plan (default: the plan's own);\n"
      "                with no PLAN_PATH, the per-GPU microbatch (default 2)\n"
      "\n"
      "With no PLAN_PATH, lints the built-in preset x strategy matrix.\n"
      "Exits 0 when every op list is clean, 1 when any invariant fails.\n";
  return msg ? 2 : 0;
}

parallel::ParallelConfig lint_cfg(parallel::TpStrategy s, std::int64_t n1,
                                  std::int64_t n2, std::int64_t nb = 1,
                                  bool ring = false) {
  parallel::ParallelConfig c;
  c.strategy = s;
  c.n1 = n1;
  c.n2 = n2;
  c.nb = nb;
  c.ring_attention = ring;
  return c;
}

int run_lint(const util::ArgParser& args) {
  if (args.has("help")) return lint_usage(nullptr);
  const auto& pos = args.positional();
  if (pos.size() > 2) return lint_usage("too many arguments");

  if (pos.size() == 2) {
    // Lint one saved plan.
    const std::string model_name = args.get_or("model", "gpt3-1t");
    const auto mdl = model::preset_by_name(model_name);
    if (!mdl) return lint_usage(("unknown model '" + model_name + "'").c_str());
    io::LoadedPlan plan;
    try {
      plan = io::load_plan_file(pos[1]);
    } catch (const std::exception& e) {
      return lint_usage(e.what());
    }
    const std::int64_t batch = args.get_int_or("batch", plan.global_batch);
    const auto stray = args.unused();
    if (!stray.empty()) {
      return lint_usage(("unknown flag --" + stray.front()).c_str());
    }
    // Divisibility prechecks against a system just big enough for the plan:
    // the builders assume them, so a violated one is itself a lint failure.
    const auto sys = hw::make_system(hw::GpuGeneration::B200,
                                     plan.cfg.placement_product(),
                                     plan.cfg.total_gpus());
    if (const auto why = plan.cfg.invalid_reason(*mdl, sys, batch)) {
      std::cerr << "lint: invalid plan configuration: " << *why << "\n";
      return 1;
    }
    const std::int64_t b = plan.cfg.local_microbatch(batch);
    if (b < 1) return lint_usage("plan batch does not yield a microbatch >= 1");
    analysis::LintReport report;
    try {
      report = analysis::lint_config(*mdl, plan.cfg, b);
    } catch (const std::exception& e) {
      std::cerr << "lint: cannot build layer for plan: " << e.what() << "\n";
      return 1;
    }
    std::cout << "lint " << pos[1] << ": " << mdl->name << " "
              << plan.cfg.describe() << " b=" << b << "\n"
              << report.summary() << "\n";
    return report.errors() > 0 ? 1 : 0;
  }

  // No plan: sweep the preset x strategy matrix.
  const std::int64_t b = args.get_int_or("batch", 2);
  const auto stray = args.unused();
  if (!stray.empty()) {
    return lint_usage(("unknown flag --" + stray.front()).c_str());
  }
  if (b < 1) return lint_usage("--batch must be >= 1");

  using parallel::TpStrategy;
  struct Case {
    model::TransformerConfig mdl;
    std::string label;
    parallel::ParallelConfig cfg;
  };
  std::vector<Case> cases;
  for (const auto& mdl : {model::gpt3_1t(), model::vit_64k()}) {
    cases.push_back({mdl, "1d", lint_cfg(TpStrategy::TP1D, 8, 1)});
    cases.push_back({mdl, "2d", lint_cfg(TpStrategy::TP2D, 8, 2)});
    cases.push_back({mdl, "summa", lint_cfg(TpStrategy::Summa2D, 4, 4, 4)});
    cases.push_back(
        {mdl, "2d+ring", lint_cfg(TpStrategy::TP2D, 8, 2, 1, true)});
  }
  cases.push_back({model::gpt_moe_1t(), "1d", lint_cfg(TpStrategy::TP1D, 8, 1)});
  cases.push_back({model::gpt_moe_1t(), "2d", lint_cfg(TpStrategy::TP2D, 8, 2)});

  std::size_t total_errors = 0, total_warnings = 0;
  for (const auto& c : cases) {
    analysis::LintReport report;
    try {
      report = analysis::lint_config(c.mdl, c.cfg, b);
    } catch (const std::exception& e) {
      std::cout << "FAIL  " << c.mdl.name << " x " << c.label
                << ": cannot build layer: " << e.what() << "\n";
      ++total_errors;
      continue;
    }
    total_errors += report.errors();
    total_warnings += report.warnings();
    std::cout << (report.errors() > 0 ? "FAIL  " : "ok    ") << c.mdl.name
              << " x " << c.label << "\n";
    if (!report.clean()) std::cout << report.summary() << "\n";
  }
  std::cout << cases.size() << " op lists linted, " << total_errors
            << " error(s), " << total_warnings << " warning(s)\n";
  return total_errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (!args.positional().empty() && args.positional().front() == "lint") {
    return run_lint(args);
  }
  if (args.has("help")) return usage(nullptr);

  // --- config file (flags still override the GPU-count style fields) ---
  io::LoadedConfig file_cfg;
  if (const auto path = args.get("config")) {
    try {
      file_cfg = io::load_config_file(*path);
    } catch (const std::exception& e) {
      return usage(e.what());
    }
  }

  // --- model ---
  const std::string model_name =
      args.get_or("model", file_cfg.model ? "from-config" : "gpt3-1t");
  model::TransformerConfig mdl;
  if (model_name == "from-config") {
    mdl = *file_cfg.model;
  } else if (model_name == "custom") {
    mdl.name = "custom";
    mdl.seq_len = args.get_int_or("l", 0);
    mdl.embed = args.get_int_or("e", 0);
    mdl.heads = args.get_int_or("heads", 0);
    mdl.depth = args.get_int_or("depth", 0);
    mdl.hidden = args.get_int_or("hidden", 4 * mdl.embed);
    mdl.kv_heads = args.get_int_or("kv-heads", 0);
    if (args.has("window")) {
      mdl.attention = model::AttentionKind::kWindowed;
      mdl.window = args.get_int_or("window", 0);
    }
    try {
      mdl.validate();
    } catch (const std::exception& e) {
      return usage(e.what());
    }
  } else if (auto preset = model::preset_by_name(model_name)) {
    mdl = *preset;
  } else {
    return usage(("unknown model '" + model_name + "'").c_str());
  }

  // --- system ---
  hw::SystemConfig sys;
  if (file_cfg.system) {
    sys = *file_cfg.system;
    if (args.has("gpus")) sys.n_gpus = args.get_int_or("gpus", sys.n_gpus);
    if (args.has("nvs")) sys.nvs_domain = args.get_int_or("nvs", sys.nvs_domain);
    (void)args.get("gpu");  // config file wins; mark as consumed
  } else {
    const auto gen = gen_by_name(args.get_or("gpu", "b200"));
    if (!gen) return usage("unknown --gpu (a100|h200|b200)");
    sys = hw::make_system(*gen, args.get_int_or("nvs", 8),
                          args.get_int_or("gpus", 1024));
  }

  // --- search options ---
  const std::string strat = args.get_or("strategy", "1d");
  std::vector<parallel::TpStrategy> strategies;
  if (strat == "1d") strategies = {parallel::TpStrategy::TP1D};
  else if (strat == "2d") strategies = {parallel::TpStrategy::TP2D};
  else if (strat == "summa") strategies = {parallel::TpStrategy::Summa2D};
  else if (strat == "all") {
    strategies = {parallel::TpStrategy::TP1D, parallel::TpStrategy::TP2D,
                  parallel::TpStrategy::Summa2D};
  } else {
    return usage("unknown --strategy (1d|2d|summa|all)");
  }

  search::SearchOptions opts;
  opts.global_batch = args.get_int_or("batch", 4096);
  opts.top_k = static_cast<std::size_t>(args.get_int_or("top", 0));
  if (args.has("interleave")) opts.interleave_candidates = {1, 2, 4, 8};
  opts.allow_zero3 = args.has("zero3");
  opts.eval.tp_overlap = args.get_double_or("tp-overlap", 0.0);
  opts.eval.activation_offload = args.get_double_or("offload", 0.0);
  opts.eval.activation_recompute = args.has("recompute");
  const std::string plan_path = args.get_or("plan", "");
  const std::string save_plan = args.get_or("save-plan", "");
  const double tokens = args.get_double_or("tokens", 0.0);
  const double samples = args.get_double_or("samples", 0.0);
  const double rate = args.get_double_or("rate", 0.0);
  const bool want_ops = args.has("ops");
  const bool want_sens = args.has("sensitivity");
  const std::string csv = args.get_or("csv", "");
  const std::string markdown = args.get_or("markdown", "");

  const auto stray = args.unused();
  if (!stray.empty()) {
    return usage(("unknown flag --" + stray.front()).c_str());
  }

  std::cout << "Model:  " << mdl.name << " ("
            << util::format_fixed(mdl.total_params() / 1e9, 1)
            << "B params, l=" << mdl.seq_len << ", e=" << mdl.embed
            << ", h=" << mdl.heads << ", d=" << mdl.depth << ")\n";
  std::cout << "System: " << sys.describe() << "\n\n";

  std::vector<report::LabeledResult> rows;
  core::EvalResult best;
  parallel::TpStrategy best_strategy = strategies.front();
  if (!plan_path.empty()) {
    // Evaluate a saved plan directly, skipping the search.
    try {
      const io::LoadedPlan plan = io::load_plan_file(plan_path);
      opts.global_batch = plan.global_batch;
      best = core::evaluate(mdl, sys, plan.cfg, plan.global_batch, opts.eval);
      best_strategy = plan.cfg.strategy;
      rows.push_back({"plan", best});
    } catch (const std::exception& e) {
      return usage(e.what());
    }
  } else
  for (auto s : strategies) {
    opts.strategy = s;
    const auto found = search::find_optimal(mdl, sys, opts);
    rows.push_back({parallel::to_string(s), found.best});
    if (found.best.feasible &&
        (!best.feasible || found.best.iteration() < best.iteration())) {
      best = found.best;
      best_strategy = s;
    }
    if (opts.top_k > 0 && found.best.feasible) {
      for (std::size_t i = 1; i < found.top.size(); ++i) {
        rows.push_back({"  #" + std::to_string(i + 1), found.top[i]});
      }
    }
  }
  report::print_panels(std::cout, "optimal configurations", rows);

  if (!best.feasible) {
    std::cout << "No feasible configuration: " << best.reason << "\n";
    return 1;
  }
  std::cout << "Best: " << best.cfg.describe() << " — "
            << util::format_time(best.iteration()) << "/iteration\n";

  auto report_budget = [&](const core::TrainingEstimate& est,
                           const std::string& what) {
    const core::CostEstimate cost = core::estimate_cost(
        sys, sys.n_gpus, est.total_seconds, 1.3, rate);
    std::cout << "Training on " << what << ": "
              << util::format_fixed(est.days, 1) << " days, "
              << util::format_fixed(cost.gpu_hours / 1e6, 2) << "M GPU-hours, "
              << util::format_fixed(cost.energy_mwh, 0) << " MWh";
    if (rate > 0) {
      std::cout << ", $" << util::format_fixed(cost.cost_usd / 1e6, 1) << "M";
    }
    std::cout << "\n";
  };
  if (tokens > 0) {
    report_budget(core::estimate_token_training(mdl, opts.global_batch,
                                                best.iteration(), tokens),
                  std::to_string(tokens) + " tokens");
  }
  if (samples > 0) {
    report_budget(core::estimate_sample_training(opts.global_batch,
                                                 best.iteration(), samples),
                  std::to_string(samples) + " samples");
  }

  if (want_ops) {
    std::cout << '\n';
    report::print_op_report(std::cout, mdl, sys, best.cfg, opts.global_batch);
  }

  if (want_sens) {
    std::cout << "\nHardware elasticities (d log time / d log parameter):\n";
    for (const auto& s : report::hardware_sensitivities(
             mdl, sys, best_strategy, opts.global_batch)) {
      std::cout << "  " << s.parameter << ": "
                << util::format_fixed(s.elasticity, 3) << "\n";
    }
  }

  if (!csv.empty()) {
    report::write_results_csv(csv, rows);
    std::cout << "\nCSV written to " << csv << "\n";
  }
  if (!save_plan.empty()) {
    io::write_plan_file(save_plan, best, opts.global_batch);
    std::cout << "Plan written to " << save_plan << "\n";
  }
  if (!markdown.empty()) {
    report::write_markdown_report_file(
        markdown, "tfpe plan: " + mdl.name,
        {"Model: " + mdl.name, "System: " + sys.describe(),
         "Global batch: " + std::to_string(opts.global_batch)},
        rows);
    std::cout << "Markdown report written to " << markdown << "\n";
  }
  return 0;
}
