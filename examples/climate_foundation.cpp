// Science-foundation-model planner: training the long-sequence ViT on ERA5
// weather data (the paper's SciML representative).
//
// The 720x1440 ERA5 grid at patch size 4 yields a 64800-token sequence, so
// attention dominates and 4D parallelism (2D TP + PP + DP) is required.
// This example compares the three TP strategies at a fixed cluster and
// reports the epochs-over-ERA5 training time for the best one.
//
// Usage: climate_foundation [n_gpus] [epochs]
//   defaults: 4096 B200 GPUs, 80 epochs.

#include <cstdlib>
#include <iostream>

#include "core/training_estimate.hpp"
#include "report/breakdown_report.hpp"
#include "search/search.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace tfpe;

  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 4096;
  const double epochs = argc > 2 ? std::atof(argv[2]) : 80.0;
  const std::int64_t b = 4096;

  const model::TransformerConfig mdl = model::vit_64k();
  const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, n);

  std::cout << "Model:  " << mdl.name << " — sequence " << mdl.seq_len
            << " tokens (720x1440 ERA5 grid, patch 4), "
            << mdl.total_params() / 1e9 << "B params\n";
  std::cout << "System: " << sys.describe() << "\n\n";

  std::vector<report::LabeledResult> rows;
  core::EvalResult best;
  for (auto strat : {parallel::TpStrategy::TP1D, parallel::TpStrategy::TP2D,
                     parallel::TpStrategy::Summa2D}) {
    search::SearchOptions opts;
    opts.strategy = strat;
    opts.global_batch = b;
    const auto r = search::find_optimal(mdl, sys, opts).best;
    rows.push_back({parallel::to_string(strat), r});
    if (r.feasible && (!best.feasible || r.iteration() < best.iteration())) {
      best = r;
    }
  }
  report::print_panels(std::cout, "TP strategy comparison for " + mdl.name,
                       rows);

  if (!best.feasible) {
    std::cout << "No strategy fits this model on " << n << " GPUs.\n";
    return 1;
  }

  const double samples_per_year = 365.0 * 24.0;  // hourly reanalysis
  const auto est = core::estimate_sample_training(
      b, best.iteration(), 40.0 * samples_per_year * epochs);
  std::cout << "Best strategy: " << best.cfg.describe() << "\n";
  std::cout << epochs << " epochs over 40 years of hourly ERA5 ("
            << util::format_fixed(40.0 * samples_per_year * epochs / 1e6, 1)
            << "M samples): " << util::format_fixed(est.days, 1) << " days on "
            << n << " GPUs\n";

  // The headline SciML insight: which fraction of the iteration is
  // attention-driven communication?
  const auto& t = best.time;
  std::cout << "Bottleneck profile: compute "
            << util::format_fixed(100 * t.compute / best.iteration(), 1)
            << "%, TP comm "
            << util::format_fixed(100 * t.tp_comm / best.iteration(), 1)
            << "%, bubbles "
            << util::format_fixed(100 * t.bubble / best.iteration(), 1)
            << "%, HBM used " << util::format_bytes(best.mem.total()) << "\n";
  return 0;
}
