// LLM pre-training planner: how long does it take to pre-train GPT3-1T on
// 1T tokens, across GPU generations, cluster sizes and NVS domain sizes?
//
// This is the Fig. 5a question asked the way a capacity planner would:
// "I have N GPUs of generation G — what parallelization should I run, what
// will an iteration cost, and when does the job finish?"
//
// Usage: pretrain_planner [n_gpus] [global_batch]
//   defaults: sweep {1024, 4096, 16384} GPUs, batch 4096.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/training_estimate.hpp"
#include "report/figure_data.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace tfpe;

  const model::TransformerConfig mdl = model::gpt3_1t();
  std::vector<std::int64_t> scales{1024, 4096, 16384};
  if (argc > 1) scales = {std::atoll(argv[1])};
  const std::int64_t b = argc > 2 ? std::atoll(argv[2]) : 4096;

  std::cout << "Pre-training plan for " << mdl.name << " ("
            << mdl.total_params() / 1e9 << "B params) on "
            << core::kGpt3PretrainTokens / 1e12 << "T tokens, batch " << b
            << "\n\n";

  util::TextTable t;
  t.set_header({"system", "GPUs", "best configuration", "iter", "MFU %",
                "days", "GPU-years", "energy MWh"});
  for (auto gen : {hw::GpuGeneration::A100, hw::GpuGeneration::H200,
                   hw::GpuGeneration::B200}) {
    for (std::int64_t n : scales) {
      const hw::SystemConfig sys = hw::make_system(gen, 8, n);
      const auto r = report::optimal_at_scale(mdl, sys,
                                              parallel::TpStrategy::TP1D, b, n);
      if (!r.feasible) {
        t.add_row({hw::to_string(gen), std::to_string(n),
                   "infeasible: " + r.reason, "-", "-", "-", "-", "-"});
        continue;
      }
      const auto est = core::estimate_token_training(
          mdl, b, r.iteration(), core::kGpt3PretrainTokens);
      // Model FLOPs utilization: useful FLOPs (3 passes x 2 P tokens)
      // against the cluster peak.
      const double useful =
          6.0 * static_cast<double>(mdl.total_params()) *
          static_cast<double>(b) * static_cast<double>(mdl.seq_len);
      const double mfu =
          useful / (r.iteration() * sys.gpu.tensor_flops.value() *
                    static_cast<double>(n));
      const core::CostEstimate cost =
          core::estimate_cost(sys, n, est.total_seconds);
      t.add_row({hw::to_string(gen), std::to_string(n), r.cfg.describe(),
                 util::format_time(r.iteration()),
                 util::format_fixed(100.0 * mfu, 1),
                 util::format_fixed(est.days, 1),
                 util::format_fixed(est.days / 365.0 * n, 0),
                 util::format_fixed(cost.energy_mwh, 0)});
    }
  }
  t.print(std::cout);
  std::cout << "\nReading the table: 'days' is wall-clock to 1T tokens;"
               "\n'GPU-years' is the total accelerator budget the run burns.\n";
  return 0;
}
