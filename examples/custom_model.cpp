// Custom-model workflow: load a user-described model and system from a
// configuration file (examples/configs/ocean_foundation.tfpe), search all
// three TP strategies, and report the plan — the path a downstream team
// with its own foundation model follows.
//
// Usage: custom_model [path/to/config.tfpe]

#include <iostream>

#include "io/config_file.hpp"
#include "report/breakdown_report.hpp"
#include "search/search.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace tfpe;

  io::LoadedConfig cfg;
  std::string path;
  if (argc > 1) {
    path = argv[1];
    try {
      cfg = io::load_config_file(path);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n"
                << "usage: custom_model [config.tfpe] (see examples/configs/)\n";
      return 2;
    }
  } else {
    // Search the usual relative locations for the bundled example config.
    for (const char* candidate :
         {"examples/configs/ocean_foundation.tfpe",
          "../examples/configs/ocean_foundation.tfpe",
          "../../examples/configs/ocean_foundation.tfpe"}) {
      try {
        cfg = io::load_config_file(candidate);
        path = candidate;
        break;
      } catch (const std::exception&) {
        continue;
      }
    }
    if (path.empty()) {
      std::cerr << "could not find examples/configs/ocean_foundation.tfpe; "
                   "pass a config path\n";
      return 2;
    }
  }
  if (!cfg.model || !cfg.system) {
    std::cerr << path << " must define both [model] and [system]\n";
    return 2;
  }
  const auto& mdl = *cfg.model;
  const auto& sys = *cfg.system;

  std::cout << "Model:  " << mdl.name << " ("
            << util::format_fixed(mdl.total_params() / 1e9, 1)
            << "B params, l=" << mdl.seq_len << ", e=" << mdl.embed
            << ", kv_heads=" << mdl.kv_heads_or_default() << ")\n";
  std::cout << "System: " << sys.describe() << "\n\n";

  std::vector<report::LabeledResult> rows;
  for (auto strat : {parallel::TpStrategy::TP1D, parallel::TpStrategy::TP2D,
                     parallel::TpStrategy::Summa2D}) {
    search::SearchOptions opts;
    opts.strategy = strat;
    opts.global_batch = 4096;
    rows.push_back({parallel::to_string(strat),
                    search::find_optimal(mdl, sys, opts).best});
  }
  report::print_panels(std::cout, "strategy comparison for " + mdl.name, rows);

  const report::LabeledResult* best = nullptr;
  for (const auto& row : rows) {
    if (row.result.feasible &&
        (!best || row.result.iteration() < best->result.iteration())) {
      best = &row;
    }
  }
  if (!best) {
    std::cout << "No strategy fits — increase TP divisibility, GPUs, or "
                 "memory capacity in the config.\n";
    return 1;
  }
  std::cout << "Recommended: " << best->result.cfg.describe() << " ("
            << util::format_time(best->result.iteration()) << "/iteration)\n";
  return 0;
}
