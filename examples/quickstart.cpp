// Quickstart: find the optimal way to train GPT3-1T on 1024 B200 GPUs.
//
// Demonstrates the core API in ~30 lines:
//   1. pick a model preset and a system preset,
//   2. run the exhaustive configuration search (S3),
//   3. print the paper-style configuration/time panels and a days-to-train
//      estimate.

#include <iostream>

#include "core/training_estimate.hpp"
#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "report/breakdown_report.hpp"
#include "search/search.hpp"
#include "util/units.hpp"

int main() {
  using namespace tfpe;

  const model::TransformerConfig mdl = model::gpt3_1t();
  const hw::SystemConfig sys =
      hw::make_system(hw::GpuGeneration::B200, /*nvs_domain=*/8,
                      /*n_gpus=*/1024);

  std::cout << "Model:  " << mdl.name << "  (" << mdl.total_params() / 1e9
            << "B params, l=" << mdl.seq_len << ", e=" << mdl.embed << ")\n";
  std::cout << "System: " << sys.describe() << "\n\n";

  search::SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 4096;
  const search::SearchResult found = search::find_optimal(mdl, sys, opts);

  if (!found.best.feasible) {
    std::cout << "No feasible configuration: " << found.best.reason << "\n";
    return 1;
  }

  std::cout << "Searched " << found.evaluated << " configurations ("
            << found.feasible << " feasible).\n";
  std::cout << "Optimal: " << found.best.cfg.describe() << "\n\n";
  report::print_panels(std::cout, "optimal configuration", {{"best", found.best}});

  const core::TrainingEstimate est = core::estimate_token_training(
      mdl, opts.global_batch, found.best.iteration(), core::kGpt3PretrainTokens);
  std::cout << "Pre-training on 1T tokens: " << est.steps << " steps x "
            << util::format_time(est.step_time) << " = "
            << util::format_fixed(est.days, 1) << " days\n";
  return 0;
}
