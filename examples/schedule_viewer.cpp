// Pipeline-schedule viewer: run the discrete-event 1F1B simulation for a
// configuration and export a Chrome trace (chrome://tracing or
// https://ui.perfetto.dev) showing the warmup ramp, the steady
// one-forward-one-backward phase, the drain, and the bubble on every stage.
//
// Usage: schedule_viewer [np] [m] [out.json]

#include <cstdlib>
#include <iostream>

#include "core/evaluator.hpp"
#include "model/transformer.hpp"
#include "sim/memory_timeline.hpp"
#include "sim/trace_export.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace tfpe;

  const std::int64_t np = argc > 1 ? std::atoll(argv[1]) : 8;
  const std::int64_t m = argc > 2 ? std::atoll(argv[2]) : 32;
  const std::string out = argc > 3 ? argv[3] : "pipeline_trace.json";

  // Derive realistic per-microbatch stage times from the GPT3-1T model at
  // the paper's Fig. 1 optimum shard sizes.
  const auto mdl = model::gpt3_1t();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 8 * np * 32);
  parallel::ParallelConfig cfg;
  cfg.strategy = parallel::TpStrategy::TP1D;
  cfg.n1 = 8;
  cfg.np = np;
  cfg.nd = 32;
  cfg.microbatches = m;
  cfg.nvs1 = 8;
  const auto r = core::evaluate(mdl, sys, cfg, 32 * m);
  if (!r.feasible) {
    std::cerr << "configuration infeasible: " << r.reason << "\n";
    return 1;
  }

  const sim::PipelineTrace trace = sim::simulate_pipeline(
      {np, m, Seconds(r.t_fwd_micro), Seconds(r.t_bwd_micro), Seconds(1e-4)});
  sim::write_chrome_trace_file(out, trace);

  std::cout << "Simulated " << np << "-stage 1F1B with " << m
            << " microbatches (tf=" << util::format_time(r.t_fwd_micro)
            << ", tb=" << util::format_time(r.t_bwd_micro) << ")\n";
  std::cout << "completion: " << util::format_time(trace.completion_time)
            << "; stage-0 bubble: " << util::format_time(trace.stage0_idle)
            << " (analytic: "
            << util::format_time((np - 1) * (r.t_fwd_micro + r.t_bwd_micro))
            << ")\n";
  std::cout << trace.tasks.size() << " tasks written to " << out
            << " — open in chrome://tracing or ui.perfetto.dev\n";

  std::cout << "activation residency (microbatches in flight per stage):\n";
  for (const auto& p : sim::activation_timeline(trace, np)) {
    std::cout << "  stage " << p.stage << ": peak "
              << p.high_water_microbatches << " at "
              << util::format_time(p.peak_time) << "\n";
  }
  return 0;
}
