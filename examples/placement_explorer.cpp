// GPU-placement explorer: the paper's Q1 insight (ii)-(iii) — for a FIXED
// parallelization, how much does the assignment of GPU groups onto the fast
// (NVS) domain matter, and which assignment is best?
//
// Takes the paper's Fig. 1 optimum for GPT3-1T (nt=8, np=64, nd=32 on
// 16384 B200) and evaluates every non-dominated placement of the TP/PP/DP
// groups onto NVS domains of size 8 and 64.
//
// Usage: placement_explorer [nvs_domain]

#include <cstdlib>
#include <iostream>

#include "report/breakdown_report.hpp"
#include "search/enumerate.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace tfpe;

  const model::TransformerConfig mdl = model::gpt3_1t();
  const std::int64_t b = 4096;

  std::vector<std::int64_t> domains{8, 64};
  if (argc > 1) domains = {std::atoll(argv[1])};

  parallel::ParallelConfig cfg;
  cfg.strategy = parallel::TpStrategy::TP1D;
  cfg.n1 = 8;
  cfg.np = 64;
  cfg.nd = 32;
  cfg.microbatches = 128;

  for (std::int64_t nvs : domains) {
    const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, nvs, 16384);
    std::vector<report::LabeledResult> rows;
    for (const auto& p : search::enumerate_placements(cfg, nvs)) {
      cfg.nvs1 = p[0];
      cfg.nvs2 = p[1];
      cfg.nvsp = p[2];
      cfg.nvsd = p[3];
      rows.push_back({"TPx" + std::to_string(p[0]) + " PPx" +
                          std::to_string(p[2]) + " DPx" + std::to_string(p[3]),
                      core::evaluate(mdl, sys, cfg, b)});
    }
    report::print_panels(
        std::cout,
        "Placements of (nt=8, np=64, nd=32) on NVS domain " +
            std::to_string(nvs),
        rows);

    const report::LabeledResult* best = nullptr;
    const report::LabeledResult* worst = nullptr;
    for (const auto& row : rows) {
      if (!row.result.feasible) continue;
      if (!best || row.result.iteration() < best->result.iteration()) {
        best = &row;
      }
      if (!worst || row.result.iteration() > worst->result.iteration()) {
        worst = &row;
      }
    }
    if (best && worst) {
      std::cout << "best placement:  " << best->label << " ("
                << util::format_time(best->result.iteration()) << ")\n"
                << "worst placement: " << worst->label << " ("
                << util::format_time(worst->result.iteration()) << ") — "
                << util::format_fixed(100.0 * (worst->result.iteration() /
                                                   best->result.iteration() -
                                               1.0),
                                      1)
                << "% slower\n\n";
    }
  }
  std::cout << "Insight: placement alone — no change to the parallelization —\n"
               "moves iteration time by double-digit percentages; software\n"
               "must be flexible in WHICH GPUs serve each group (paper §V).\n";
  return 0;
}
