// Hardware/software co-design what-if: evaluate a hypothetical accelerator
// before it exists (the paper's Fig. A5/A6 use case, §V item (v)).
//
// Two candidate designs are compared against the B200 baseline:
//   * "HBM-lite":  half the bandwidth, same capacity — cheaper stacks;
//   * "LPDDR-max": one quarter the bandwidth, 4x the capacity — the
//     alternate-memory-technology design the paper highlights as viable.
//
// For each design the optimal parallelization is re-searched — capacity
// changes the feasible set, so the configurations shift, trading
// parallelism inefficiency for memory-access time.
//
// Usage: system_codesign [n_gpus]

#include <cstdlib>
#include <iostream>

#include "report/breakdown_report.hpp"
#include "report/figure_data.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace tfpe;

  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 8192;
  const std::int64_t b = 4096;

  struct Design {
    std::string name;
    double bw_scale;
    double cap_scale;
  };
  const Design designs[] = {
      {"B200 baseline", 1.0, 1.0},
      {"HBM-lite (bw/2)", 0.5, 1.0},
      {"LPDDR-max (bw/4, cap x4)", 0.25, 4.0},
  };

  struct Workload {
    model::TransformerConfig mdl;
    parallel::TpStrategy strategy;
  };
  const Workload workloads[] = {
      {model::gpt3_1t(), parallel::TpStrategy::TP1D},
      {model::vit_64k(), parallel::TpStrategy::TP2D},
  };

  for (const Workload& w : workloads) {
    std::vector<report::LabeledResult> rows;
    double baseline = 0;
    for (const Design& d : designs) {
      hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, n);
      sys.gpu = sys.gpu.with_memory(sys.gpu.hbm_capacity * d.cap_scale,
                                    sys.gpu.hbm_bandwidth * d.bw_scale);
      const auto r = report::optimal_at_scale(w.mdl, sys, w.strategy, b, n);
      if (d.bw_scale == 1.0 && r.feasible) baseline = r.iteration();
      rows.push_back({d.name, r});
    }
    report::print_panels(std::cout,
                         w.mdl.name + " on " + std::to_string(n) +
                             " GPUs: memory-technology what-if",
                         rows);
    for (const auto& [label, r] : rows) {
      if (!r.feasible || baseline == 0) continue;
      std::cout << "  " << label << ": "
                << util::format_fixed(100.0 * (r.iteration() / baseline - 1.0),
                                      1)
                << "% vs baseline\n";
    }
    std::cout << '\n';
  }
  std::cout << "Takeaway: large-capacity/low-bandwidth designs stay within a\n"
               "few percent of the HBM baseline by choosing less parallel,\n"
               "less communication-bound configurations (paper Fig. A6).\n";
  return 0;
}
