// Global-batch scaling study: how does the optimal configuration and the
// per-token cost change with the global batch size at a fixed cluster?
//
// Larger batches feed the pipeline more microbatches (shrinking the bubble
// fraction) and amortize the DP collectives, but a production run cannot
// grow b arbitrarily (optimization quality). This example quantifies the
// systems side of that trade for GPT3-1T on 4096 B200, plus the Pareto
// frontier (time vs HBM) at the paper's batch size.
//
// Usage: batch_scaling [n_gpus]

#include <cstdlib>
#include <iostream>

#include "report/breakdown_report.hpp"
#include "search/search.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace tfpe;

  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 4096;
  const model::TransformerConfig mdl = model::gpt3_1t();
  const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, n);

  util::TextTable t;
  t.set_header({"batch", "best config", "iter", "tokens/s/GPU", "bubble %"});
  for (std::int64_t b = 512; b <= 16384; b *= 2) {
    search::SearchOptions opts;
    opts.strategy = parallel::TpStrategy::TP1D;
    opts.global_batch = b;
    const auto r = search::find_optimal(mdl, sys, opts).best;
    if (!r.feasible) {
      t.add_row({std::to_string(b), "infeasible: " + r.reason, "-", "-", "-"});
      continue;
    }
    const double tps = static_cast<double>(b) *
                       static_cast<double>(mdl.seq_len) / r.iteration() /
                       static_cast<double>(n);
    t.add_row({std::to_string(b), r.cfg.describe(),
               util::format_time(r.iteration()), util::format_fixed(tps, 0),
               util::format_fixed(100.0 * r.time.bubble / r.iteration(), 1)});
  }
  std::cout << "Global-batch scaling of " << mdl.name << " on "
            << sys.describe() << "\n";
  t.print(std::cout);

  std::cout << "\nTime-vs-memory Pareto frontier at b=4096 (what is the\n"
               "fastest plan under a given HBM budget?):\n";
  search::SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 4096;
  std::vector<report::LabeledResult> rows;
  int idx = 1;
  for (const auto& r : search::pareto_frontier(mdl, sys, opts)) {
    rows.push_back({"P" + std::to_string(idx++), r});
    if (rows.size() >= 8) break;
  }
  report::print_config_panel(std::cout, rows);
  report::print_time_panel(std::cout, rows);
  return 0;
}
