// Reproduces paper Fig. 4: optimal parallelization strategy and time
// breakdown vs number of GPUs (strong scaling) on B200 with NVS domain 8.
//   (a) GPT3-1T with 1D TP — expected: compute-dominated, PP bubbles rise
//       then TP/DP communication; HBM utilization drops at scale.
//   (b) ViT-64K with 2D TP — expected: large TP mandatory, TP communication
//       the main bottleneck, HBM highly utilized throughout.
//
// The full S3 search (parallelization + placement) runs independently per n.

#include <iostream>

#include "model/transformer.hpp"
#include "report/figure_data.hpp"

int main() {
  using namespace tfpe;

  const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, 16384);
  const std::int64_t b = 4096;

  {
    const auto scales = report::pow2_range(128, 16384);
    const auto rows = report::scaling_sweep(model::gpt3_1t(), sys,
                                            parallel::TpStrategy::TP1D, b, scales);
    report::print_panels(std::cout,
                         "Fig. 4a | GPT3-1T, 1D TP, B200 NVS 8, optimal vs n",
                         rows);
    report::write_results_csv("fig4a.csv", rows);
  }
  {
    const auto scales = report::pow2_range(256, 16384);
    const auto rows = report::scaling_sweep(model::vit_64k(), sys,
                                            parallel::TpStrategy::TP2D, b, scales);
    report::print_panels(std::cout,
                         "Fig. 4b | ViT-64K, 2D TP, B200 NVS 8, optimal vs n",
                         rows);
    report::write_results_csv("fig4b.csv", rows);
  }
  return 0;
}
