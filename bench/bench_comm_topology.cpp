// A/B benchmark of the hierarchical topology layer: the pluggable
// collective model walking a two-level NVS+IB fabric against three-level
// leaf/spine and rail-optimized variants, at two granularities:
//
//  * the collective_time hot path itself (the per-candidate cost of the
//    placement scan) over a mixed pool of collectives/volumes/groups;
//  * the full two-phase evaluation (bind_system + time_placement) of the
//    GPT3-1T paper optimum with each fabric attached to the system.
//
// The driver times each fabric with min-of-N repeats, writes
// BENCH_comm.json, and asserts (exit 1 otherwise) that the degenerate
// leaf/spine preset (leaf = nvs, no oversubscription) reproduces the
// two-level iteration time bitwise — the golden-equivalence contract the
// topology refactor is built on.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "comm/collective_algorithm.hpp"
#include "core/cost_signature.hpp"
#include "hw/topology.hpp"

namespace {

using namespace tfpe;

constexpr std::int64_t kGpus = 16384;
constexpr std::int64_t kBatch = 4096;

struct Fabric {
  std::string name;
  hw::Topology topo;
};

std::vector<Fabric> fabrics() {
  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::B200);
  return {
      {"two_level", hw::two_level_topology(net, 8, kGpus)},
      {"leaf_spine_degenerate", hw::leaf_spine_topology(net, 8, 8, kGpus, 1.0)},
      {"leaf_spine", hw::leaf_spine_topology(net, 8, 64, kGpus, 1.0)},
      {"leaf_spine_oversub4",
       hw::leaf_spine_topology(net, 8, 64, kGpus, 4.0)},
      {"rail_optimized", hw::rail_optimized_topology(net, 8, 64, kGpus)},
  };
}

struct Request {
  ops::Collective coll;
  Bytes bytes;
  comm::GroupPlacement group;
};

// The mix a placement scan actually issues: TP collectives per block, PP
// boundary sends, DP gradient reductions, across the volume range.
std::vector<Request> request_pool() {
  std::vector<Request> pool;
  for (double v : {1e5, 1e7, 1e9}) {
    for (std::int64_t size : {8, 64, 512}) {
      pool.push_back({ops::Collective::AllGather, Bytes(v), {size, 8}});
      pool.push_back({ops::Collective::ReduceScatter, Bytes(v), {size, 8}});
      pool.push_back({ops::Collective::AllReduce, Bytes(v), {size, 8}});
    }
    pool.push_back({ops::Collective::PointToPoint, Bytes(v), {2, 1}});
  }
  return pool;
}

double drain_pool(const hw::Topology& topo, const std::vector<Request>& pool) {
  double acc = 0;
  for (const Request& r : pool) {
    acc += comm::collective_time(topo, r.coll, r.bytes, r.group).value();
  }
  return acc;
}

parallel::ParallelConfig paper_optimum() {
  parallel::ParallelConfig c;
  c.strategy = parallel::TpStrategy::TP1D;
  c.n1 = 8;
  c.np = 64;
  c.nd = 32;
  c.microbatches = 128;
  c.nvs1 = 8;
  return c;
}

void BM_CollectiveTime(benchmark::State& state) {
  const auto all = fabrics();
  const Fabric& f = all[static_cast<std::size_t>(state.range(0))];
  const auto pool = request_pool();
  for (auto _ : state) {
    benchmark::DoNotOptimize(drain_pool(f.topo, pool));
  }
  state.SetLabel(f.name);
  state.counters["requests"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_CollectiveTime)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_TimePlacement(benchmark::State& state) {
  const auto all = fabrics();
  const Fabric& f = all[static_cast<std::size_t>(state.range(0))];
  const auto mdl = model::gpt3_1t();
  const auto cfg = paper_optimum();
  hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, kGpus);
  sys.fabric = f.topo;
  const auto sig = core::compile_signature(mdl, cfg, kBatch);
  const auto base = core::bind_system(sig, sys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::time_placement(sig, base, sys, cfg));
  }
  state.SetLabel(f.name);
}
BENCHMARK(BM_TimePlacement)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

struct Sample {
  std::string fabric;
  std::size_t depth = 0;
  double collective_ns = 0;   ///< Per collective_time call.
  double placement_us = 0;    ///< Per time_placement call.
  double bind_us = 0;         ///< Per bind_system call.
  double iteration = 0;       ///< Timed iteration at the paper optimum.
};

template <typename F>
double min_of_n(int reps, int inner, F&& body) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < inner; ++i) body();
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, sec / inner);
  }
  return best;
}

void write_json(const std::vector<Sample>& samples, bool identical,
                const std::string& path) {
  std::ofstream os(path);
  os << "{\n  \"model\": \"GPT3-1T\",\n  \"global_batch\": " << kBatch
     << ",\n  \"n_gpus\": " << kGpus
     << ",\n  \"degenerate_bitwise_identical\": "
     << (identical ? "true" : "false") << ",\n  \"fabrics\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    os << "    {\"fabric\": \"" << s.fabric << "\""
       << ", \"depth\": " << s.depth
       << ", \"collective_time_ns\": " << s.collective_ns
       << ", \"bind_system_us\": " << s.bind_us
       << ", \"time_placement_us\": " << s.placement_us
       << ", \"iteration_s\": " << s.iteration << "}"
       << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int run_driver() {
  const auto mdl = model::gpt3_1t();
  const auto cfg = paper_optimum();
  const auto pool = request_pool();
  const auto sig = core::compile_signature(mdl, cfg, kBatch);

  std::vector<Sample> samples;
  for (const Fabric& f : fabrics()) {
    hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, kGpus);
    sys.fabric = f.topo;
    const auto base = core::bind_system(sig, sys);

    Sample s;
    s.fabric = f.name;
    s.depth = f.topo.levels.size();
    s.collective_ns =
        min_of_n(5, 200, [&] {
          benchmark::DoNotOptimize(drain_pool(f.topo, pool));
        }) /
        static_cast<double>(pool.size()) * 1e9;
    s.bind_us = min_of_n(5, 50, [&] {
                  benchmark::DoNotOptimize(core::bind_system(sig, sys));
                }) *
                1e6;
    s.placement_us =
        min_of_n(5, 200, [&] {
          benchmark::DoNotOptimize(core::time_placement(sig, base, sys, cfg));
        }) *
        1e6;
    const auto r = core::time_signature(sig, base, mdl, sys, cfg, kBatch);
    s.iteration = r.feasible ? r.iteration() : -1.0;
    samples.push_back(s);
    std::cout << s.fabric << " depth=" << s.depth
              << "  collective_time=" << s.collective_ns << "ns"
              << "  bind=" << s.bind_us << "us"
              << "  time_placement=" << s.placement_us << "us"
              << "  iteration=" << s.iteration << "s\n";
  }

  // The degenerate leaf/spine preset must reproduce the two-level fabric
  // bitwise — same contract the ablation smoke test enforces grid-wide.
  const bool identical = samples[0].iteration == samples[1].iteration;
  write_json(samples, identical, "BENCH_comm.json");
  std::cout << "wrote BENCH_comm.json\n";
  if (!identical) {
    std::cerr << "degenerate leaf/spine diverged from the two-level fabric: "
              << samples[0].iteration << " vs " << samples[1].iteration
              << "\n";
    return 1;
  }
  std::cout << "degenerate leaf/spine bitwise identical to two-level\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // `--driver` (or no google-benchmark flags) runs the A/B driver that
  // emits BENCH_comm.json; benchmark flags run the registered cases.
  const bool no_args = argc == 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--driver") return run_driver();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (no_args) return run_driver();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
