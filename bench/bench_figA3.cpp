// Reproduces paper Fig. A3: optimal configurations vs GPU count on a LARGE
// NVS domain (64), B200, global batch 4096.
//   (a) GPT3-1T with 1D TP — expected: reduced PP at scale relative to the
//       NVS-8 machine (Fig. 4a); the large fast domain absorbs DP costs.
//   (b) GPT3-1T with 2D TP SUMMA — expected: effectively 1D (n2 = 1) at most
//       scales, 2D partitioning only at the largest scales.

#include <iostream>

#include "model/transformer.hpp"
#include "report/figure_data.hpp"

int main() {
  using namespace tfpe;

  const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 64, 16384);
  const std::int64_t b = 4096;
  const auto scales = report::pow2_range(512, 16384);

  {
    const auto rows = report::scaling_sweep(model::gpt3_1t(), sys,
                                            parallel::TpStrategy::TP1D, b, scales);
    report::print_panels(std::cout,
                         "Fig. A3a | GPT3-1T, 1D TP, B200 NVS 64, optimal vs n",
                         rows);
    report::write_results_csv("figA3a.csv", rows);
  }
  {
    const auto rows = report::scaling_sweep(
        model::gpt3_1t(), sys, parallel::TpStrategy::Summa2D, b, scales);
    report::print_panels(
        std::cout, "Fig. A3b | GPT3-1T, 2D TP SUMMA, B200 NVS 64, optimal vs n",
        rows);
    report::write_results_csv("figA3b.csv", rows);
  }
  return 0;
}
