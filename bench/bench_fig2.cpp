// Reproduces paper Fig. 2: GPT3-1T with 1D TP on 16384 B200 GPUs, global
// batch 4096, microbatch size 1, TP fixed at nt=8; PP and DP vary against
// each other on two NVS domain sizes (8 and 64).
//
// Expected shapes: (a) on NVS 8 a local minimum at PP=64 with non-convex DP
// communication (the placement starts assigning NVS GPUs to DP past a
// transition point); (b) on NVS 64 the minimum shifts to low PP, with the
// domain used to hide DP costs.

#include <iostream>

#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "report/breakdown_report.hpp"
#include "search/search.hpp"

int main() {
  using namespace tfpe;

  const model::TransformerConfig mdl = model::gpt3_1t();
  const std::int64_t b = 4096;
  const std::int64_t nt = 8;

  for (std::int64_t nvs : {std::int64_t{8}, std::int64_t{64}}) {
    const hw::SystemConfig sys =
        hw::make_system(hw::GpuGeneration::B200, nvs, 16384);
    std::vector<report::LabeledResult> results;
    // np from 2 to 128; nd = (16384/8) / np; microbatch size 1.
    for (std::int64_t np = 2; np <= 128; np *= 2) {
      parallel::ParallelConfig cfg;
      cfg.strategy = parallel::TpStrategy::TP1D;
      cfg.n1 = nt;
      cfg.np = np;
      cfg.nd = sys.n_gpus / nt / np;
      if (b % cfg.nd) continue;
      cfg.microbatches = b / cfg.nd;
      results.push_back({"PP=" + std::to_string(np),
                         search::best_placement(mdl, sys, cfg, b)});
    }
    report::print_panels(std::cout,
                         "Fig. 2 | GPT3-1T, 1D TP, nt=8, 16384 B200, NVS " +
                             std::to_string(nvs),
                         results);
    std::size_t best = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].result.feasible &&
          (!results[best].result.feasible ||
           results[i].result.iteration() < results[best].result.iteration())) {
        best = i;
      }
    }
    std::cout << "fastest on NVS " << nvs << ": " << results[best].label
              << "\n\n";
    report::write_results_csv("fig2_nvs" + std::to_string(nvs) + ".csv",
                              results);
  }
  return 0;
}
