// A/B benchmark of the cross-hardware sweep engines: the two-phase
// signature engine (compile once, re-time per hardware point) against the
// legacy per-point evaluator (one find_optimal per grid point), on the
// paper-style generation x NVS-domain grid for GPT3-1T.
//
// Two outputs:
//  * google-benchmark cases (BM_Sweep/<engine>/<prune>) for wall-clock
//    comparisons under the standard benchmark harness;
//  * a driver that times each (engine, prune, threads) combination over the
//    A100/H200/B200 x NVS{4,8,16,32,64} grid at 4096 GPUs and writes
//    BENCH_sweep.json — seconds, points/sec, compile-cache hit rate and the
//    signature-vs-legacy speedups — so the >= 5x sweep speedup is
//    machine-checkable. The driver also asserts (exit 1 otherwise) that the
//    per-point optima are bitwise identical across engines, prune settings
//    and thread counts.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "search/sweep.hpp"

namespace {

using namespace tfpe;

constexpr std::int64_t kGpus = 4096;
constexpr std::int64_t kBatch = 4096;

std::vector<hw::SystemConfig> grid() {
  return search::hardware_grid(
      {hw::GpuGeneration::A100, hw::GpuGeneration::H200,
       hw::GpuGeneration::B200},
      {4, 8, 16, 32, 64}, kGpus);
}

search::SweepOptions sweep_opts(bool use_signatures, bool prune,
                                unsigned threads) {
  search::SweepOptions opts;
  opts.search.strategy = parallel::TpStrategy::TP1D;
  opts.search.global_batch = kBatch;
  opts.search.prune = prune;
  opts.use_signatures = use_signatures;
  opts.threads = threads;
  return opts;
}

void BM_Sweep(benchmark::State& state) {
  const bool use_signatures = state.range(0) != 0;
  const bool prune = state.range(1) != 0;
  const auto mdl = model::gpt3_1t();
  const auto points = grid();
  const auto opts = sweep_opts(use_signatures, prune, 1);
  search::SweepStats stats;
  for (auto _ : state) {
    const auto r = search::run_sweep(mdl, points, opts);
    stats = r.stats;
    benchmark::DoNotOptimize(r);
  }
  state.counters["points"] = static_cast<double>(stats.points);
  state.counters["evaluations"] = static_cast<double>(stats.evaluated);
  state.counters["compiles"] = static_cast<double>(stats.signature_compiles);
  state.counters["compile_hit_rate"] = stats.compile_hit_rate();
}
BENCHMARK(BM_Sweep)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->ArgNames({"signatures", "prune"})
    ->Unit(benchmark::kMillisecond);

struct Sample {
  bool use_signatures = false;
  bool prune = false;
  unsigned threads = 0;
  double seconds = 0;
  search::SweepStats stats;
  std::vector<core::EvalResult> best;
};

Sample run_once(bool use_signatures, bool prune, unsigned threads,
                int repeats) {
  const auto mdl = model::gpt3_1t();
  const auto points = grid();
  const auto opts = sweep_opts(use_signatures, prune, threads);
  Sample s;
  s.use_signatures = use_signatures;
  s.prune = prune;
  s.threads = threads;
  s.seconds = 1e30;
  // min-of-N timing: each run_sweep call builds its caches from scratch, so
  // repeats stay honest about the compile work.
  for (int rep = 0; rep < repeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = search::run_sweep(mdl, points, opts);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    s.seconds = std::min(s.seconds, sec);
    s.stats = r.stats;
    if (rep + 1 == repeats) s.best = std::move(r.best);
  }
  return s;
}

bool same_optimum(const core::EvalResult& a, const core::EvalResult& b) {
  if (a.feasible != b.feasible) return false;
  if (!a.feasible) return true;
  return a.cfg.describe() == b.cfg.describe() &&
         a.iteration() == b.iteration() &&
         a.mem.total().value() == b.mem.total().value();
}

void write_json(const std::vector<Sample>& samples, std::size_t n_points,
                bool identical, const std::string& path) {
  std::ofstream os(path);
  os << "{\n  \"model\": \"GPT3-1T\",\n  \"global_batch\": " << kBatch
     << ",\n  \"n_gpus\": " << kGpus << ",\n"
     << "  \"grid\": {\"generations\": [\"a100\", \"h200\", \"b200\"], "
     << "\"nvs_domains\": [4, 8, 16, 32, 64], \"points\": " << n_points
     << "},\n  \"identical_optima\": " << (identical ? "true" : "false")
     << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    const double rate =
        s.seconds > 0 ? static_cast<double>(s.stats.points) / s.seconds : 0.0;
    os << "    {\"engine\": \""
       << (s.use_signatures ? "signature" : "legacy") << "\""
       << ", \"prune\": " << (s.prune ? "true" : "false")
       << ", \"threads\": " << s.threads
       << ", \"seconds\": " << s.seconds
       << ", \"points_per_sec\": " << rate
       << ", \"candidates\": " << s.stats.candidates
       << ", \"evaluations\": " << s.stats.evaluated
       << ", \"bound_pruned\": " << s.stats.bound_pruned
       << ", \"memory_pruned\": " << s.stats.memory_pruned
       << ", \"build_layer_calls\": " << s.stats.build_layer_calls
       << ", \"layer_cache_hits\": " << s.stats.layer_cache_hits
       << ", \"signature_compiles\": " << s.stats.signature_compiles
       << ", \"signature_cache_hits\": " << s.stats.signature_cache_hits
       << ", \"compile_hit_rate\": " << s.stats.compile_hit_rate() << "}"
       << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"speedups\": [\n";
  // Signature vs legacy at equal thread count and prune setting.
  bool first = true;
  for (const Sample& sig : samples) {
    if (!sig.use_signatures) continue;
    for (const Sample& leg : samples) {
      if (leg.use_signatures || leg.prune != sig.prune ||
          leg.threads != sig.threads) {
        continue;
      }
      if (!first) os << ",\n";
      first = false;
      os << "    {\"threads\": " << sig.threads
         << ", \"prune\": " << (sig.prune ? "true" : "false")
         << ", \"legacy_seconds\": " << leg.seconds
         << ", \"signature_seconds\": " << sig.seconds
         << ", \"speedup\": " << leg.seconds / sig.seconds << "}";
    }
  }
  os << "\n  ]\n}\n";
}

int run_driver() {
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_axis{1};
  if (cores / 2 > 1) thread_axis.push_back(cores / 2);
  if (cores > 1 && cores != cores / 2) thread_axis.push_back(cores);

  std::vector<Sample> samples;
  for (bool prune : {false, true}) {
    for (unsigned threads : thread_axis) {
      for (bool use_signatures : {false, true}) {
        samples.push_back(run_once(use_signatures, prune, threads, 5));
        const Sample& s = samples.back();
        std::cout << (s.use_signatures ? "signature" : "legacy   ")
                  << (s.prune ? " pruned    " : " exhaustive")
                  << " threads=" << s.threads << "  time=" << s.seconds << "s"
                  << "  evaluations=" << s.stats.evaluated
                  << "  compiles=" << s.stats.signature_compiles
                  << "  compile-hits=" << s.stats.signature_cache_hits << "\n";
      }
      const Sample& leg = samples[samples.size() - 2];
      const Sample& sig = samples.back();
      std::cout << "  -> signature speedup " << leg.seconds / sig.seconds
                << "x at threads=" << sig.threads << "\n";
    }
  }

  // Every run must agree per point — engine, prune setting and thread count
  // may change the work done, never the answer.
  bool identical = true;
  const std::size_t n_points = samples.front().best.size();
  for (const Sample& s : samples) {
    for (std::size_t p = 0; p < n_points; ++p) {
      if (!same_optimum(samples.front().best[p], s.best[p])) {
        identical = false;
        std::cerr << "OPTIMUM MISMATCH at grid point " << p << " ("
                  << (s.use_signatures ? "signature" : "legacy")
                  << ", prune=" << s.prune << ", threads=" << s.threads
                  << ")\n";
      }
    }
  }

  write_json(samples, n_points, identical, "BENCH_sweep.json");
  std::cout << "wrote BENCH_sweep.json\n";
  if (!identical) {
    std::cerr << "per-point optima differ between runs\n";
    return 1;
  }
  std::cout << "all per-point optima bitwise identical across engines\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // `--driver` (or no google-benchmark flags) runs the A/B driver that
  // emits BENCH_sweep.json; benchmark flags run the registered cases.
  const bool no_args = argc == 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--driver") return run_driver();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (no_args) return run_driver();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
