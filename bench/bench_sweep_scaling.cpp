// A/B benchmark of the cross-hardware sweep engines, four arms:
//   legacy     — one find_optimal per grid point (the pre-signature flow);
//   scalar     — the PR-3 two-phase signature engine (per-placement walk);
//   batch      — the SoA batched placement kernel (time_placements_batch);
//   batch-warm — batched plus warm-started incumbents along each chain;
// on the paper-style generation x NVS-domain grid for GPT3-1T.
//
// Two outputs:
//  * google-benchmark cases (BM_Sweep/<mode>/<prune>) for wall-clock
//    comparisons under the standard benchmark harness;
//  * a driver that times each (mode, prune, threads) combination over the
//    A100/H200/B200 x NVS{4,8,16,32,64} grid at 4096 GPUs — the thread axis
//    is FIXED at {1, 4, 8} so BENCH_sweep.json rows are comparable across
//    machines (oversubscribed thread counts still exercise the pool; the
//    threads=1 rows take the inline no-pool path) — and writes
//    BENCH_sweep.json — seconds, points/sec, compile-cache hit rate, batch
//    occupancy and the speedups (batch vs the scalar signature baseline,
//    signature vs legacy) — so the >= 3x batched-engine throughput gain on
//    the exhaustive scan is machine-checkable (the pruned scan times too
//    few placements per call to reach 3x; its ratio lands near 2-2.5x).
//    The driver also asserts (exit 1 otherwise) that the
//    per-point optima are bitwise identical across all four arms, prune
//    settings and thread counts, and that the work counters (candidates,
//    evaluations, prune tallies, batch calls/placements, signature-service
//    totals) are invariant across thread counts for a given (mode, prune) —
//    scheduling may reorder chains, never change the work.
//    `--quick` trims the driver for CI (threads=1 only, fewer repeats);
//    the JSON schema is unchanged so the perf-smoke comparison can match
//    rows against the checked-in artifact.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "search/sweep.hpp"

namespace {

using namespace tfpe;

constexpr std::int64_t kGpus = 4096;
constexpr std::int64_t kBatch = 4096;

enum class Mode { kLegacy, kScalar, kBatched, kBatchedWarm };
constexpr Mode kModes[] = {Mode::kLegacy, Mode::kScalar, Mode::kBatched,
                           Mode::kBatchedWarm};

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kLegacy: return "legacy";
    case Mode::kScalar: return "scalar";
    case Mode::kBatched: return "batch";
    case Mode::kBatchedWarm: return "batch-warm";
  }
  return "?";
}

std::vector<hw::SystemConfig> grid() {
  return search::hardware_grid(
      {hw::GpuGeneration::A100, hw::GpuGeneration::H200,
       hw::GpuGeneration::B200},
      {4, 8, 16, 32, 64}, kGpus);
}

search::SweepOptions sweep_opts(Mode mode, bool prune, unsigned threads) {
  search::SweepOptions opts;
  opts.search.strategy = parallel::TpStrategy::TP1D;
  opts.search.global_batch = kBatch;
  opts.search.prune = prune;
  opts.use_signatures = mode != Mode::kLegacy;
  opts.batch = mode == Mode::kBatched || mode == Mode::kBatchedWarm;
  opts.warm_start = mode == Mode::kBatchedWarm;
  opts.threads = threads;
  return opts;
}

void BM_Sweep(benchmark::State& state) {
  const Mode mode = kModes[state.range(0)];
  const bool prune = state.range(1) != 0;
  const auto mdl = model::gpt3_1t();
  const auto points = grid();
  const auto opts = sweep_opts(mode, prune, 1);
  search::SweepStats stats;
  for (auto _ : state) {
    const auto r = search::run_sweep(mdl, points, opts);
    stats = r.stats;
    benchmark::DoNotOptimize(r);
  }
  state.counters["points"] = static_cast<double>(stats.points);
  state.counters["evaluations"] = static_cast<double>(stats.evaluated);
  state.counters["compiles"] = static_cast<double>(stats.signature_compiles);
  state.counters["compile_hit_rate"] = stats.compile_hit_rate();
  state.counters["batch_occupancy"] = stats.batch_occupancy();
}
BENCHMARK(BM_Sweep)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->ArgNames({"mode", "prune"})
    ->Unit(benchmark::kMillisecond);

struct Sample {
  Mode mode = Mode::kLegacy;
  bool prune = false;
  unsigned threads = 0;
  double seconds = 0;
  search::SweepStats stats;
  std::vector<core::EvalResult> best;
};

Sample run_once(Mode mode, bool prune, unsigned threads, int repeats) {
  const auto mdl = model::gpt3_1t();
  const auto points = grid();
  const auto opts = sweep_opts(mode, prune, threads);
  Sample s;
  s.mode = mode;
  s.prune = prune;
  s.threads = threads;
  s.seconds = 1e30;
  // min-of-N timing: each run_sweep call builds its caches from scratch, so
  // repeats stay honest about the compile work.
  for (int rep = 0; rep < repeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = search::run_sweep(mdl, points, opts);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    s.seconds = std::min(s.seconds, sec);
    s.stats = r.stats;
    if (rep + 1 == repeats) s.best = std::move(r.best);
  }
  return s;
}

bool same_optimum(const core::EvalResult& a, const core::EvalResult& b) {
  if (a.feasible != b.feasible) return false;
  if (!a.feasible) return true;
  return a.cfg.describe() == b.cfg.describe() &&
         a.iteration() == b.iteration() &&
         a.mem.total().value() == b.mem.total().value();
}

void write_json(const std::vector<Sample>& samples, std::size_t n_points,
                bool identical, const std::string& path) {
  std::ofstream os(path);
  os << "{\n  \"model\": \"GPT3-1T\",\n  \"global_batch\": " << kBatch
     << ",\n  \"n_gpus\": " << kGpus << ",\n"
     << "  \"grid\": {\"generations\": [\"a100\", \"h200\", \"b200\"], "
     << "\"nvs_domains\": [4, 8, 16, 32, 64], \"points\": " << n_points
     << "},\n  \"identical_optima\": " << (identical ? "true" : "false")
     << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    const double rate =
        s.seconds > 0 ? static_cast<double>(s.stats.points) / s.seconds : 0.0;
    os << "    {\"mode\": \"" << mode_name(s.mode) << "\""
       << ", \"engine\": \""
       << (s.mode == Mode::kLegacy ? "legacy" : "signature") << "\""
       << ", \"batch\": "
       << (s.mode == Mode::kBatched || s.mode == Mode::kBatchedWarm ? "true"
                                                                    : "false")
       << ", \"warm_start\": "
       << (s.mode == Mode::kBatchedWarm ? "true" : "false")
       << ", \"prune\": " << (s.prune ? "true" : "false")
       << ", \"threads\": " << s.threads
       << ", \"seconds\": " << s.seconds
       << ", \"points_per_sec\": " << rate
       << ", \"candidates\": " << s.stats.candidates
       << ", \"evaluations\": " << s.stats.evaluated
       << ", \"bound_pruned\": " << s.stats.bound_pruned
       << ", \"memory_pruned\": " << s.stats.memory_pruned
       << ", \"build_layer_calls\": " << s.stats.build_layer_calls
       << ", \"layer_cache_hits\": " << s.stats.layer_cache_hits
       << ", \"signature_compiles\": " << s.stats.signature_compiles
       << ", \"signature_cache_hits\": " << s.stats.signature_cache_hits
       << ", \"signature_reuses\": " << s.stats.signature_reuses
       << ", \"compile_hit_rate\": " << s.stats.compile_hit_rate()
       << ", \"signature_lowers\": " << s.stats.signature_lowers
       << ", \"batch_calls\": " << s.stats.batch_calls
       << ", \"batch_placements\": " << s.stats.batch_placements
       << ", \"batch_occupancy\": " << s.stats.batch_occupancy()
       << ", \"warm_seeded\": " << s.stats.warm_seeded
       << ", \"warm_seed_feasible\": " << s.stats.warm_seed_feasible << "}"
       << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"speedups\": [\n";
  // Each accelerated arm against its natural baseline at equal thread count
  // and prune setting: batch / batch-warm vs the scalar signature engine
  // (the PR-3 throughput bar), and scalar vs legacy (the PR-3 claim,
  // re-verified).
  const auto baseline_of = [](Mode m) {
    return m == Mode::kScalar ? Mode::kLegacy : Mode::kScalar;
  };
  bool first = true;
  for (const Sample& s : samples) {
    if (s.mode == Mode::kLegacy) continue;
    for (const Sample& b : samples) {
      if (b.mode != baseline_of(s.mode) || b.prune != s.prune ||
          b.threads != s.threads) {
        continue;
      }
      if (!first) os << ",\n";
      first = false;
      os << "    {\"mode\": \"" << mode_name(s.mode) << "\""
         << ", \"baseline\": \"" << mode_name(b.mode) << "\""
         << ", \"threads\": " << s.threads
         << ", \"prune\": " << (s.prune ? "true" : "false")
         << ", \"baseline_seconds\": " << b.seconds
         << ", \"seconds\": " << s.seconds
         << ", \"speedup\": " << b.seconds / s.seconds << "}";
    }
  }
  os << "\n  ]\n}\n";
}

/// The work a sweep performs is a function of (mode, prune) alone; the
/// thread count only schedules it. Any counter drift across the thread
/// axis would mean the engines race on shared state, so the driver pins
/// the full tally. The signature-service counters are compared as the
/// compiles+hits+reuses TOTAL: concurrent chains may resolve the same
/// cache miss as duplicate compiles, shifting the compile/hit split
/// without changing how many visits were served.
bool counters_thread_invariant(const std::vector<Sample>& samples) {
  bool ok = true;
  for (const Sample& a : samples) {
    for (const Sample& b : samples) {
      if (a.mode != b.mode || a.prune != b.prune || a.threads >= b.threads) {
        continue;
      }
      const auto sig_total = [](const search::SweepStats& st) {
        return st.signature_compiles + st.signature_cache_hits +
               st.signature_reuses;
      };
      const auto check = [&](const char* name, std::size_t va, std::size_t vb) {
        if (va == vb) return;
        ok = false;
        std::cerr << "COUNTER DRIFT " << name << ": " << va << " (threads="
                  << a.threads << ") vs " << vb << " (threads=" << b.threads
                  << ") for " << mode_name(a.mode)
                  << " prune=" << a.prune << "\n";
      };
      check("candidates", a.stats.candidates, b.stats.candidates);
      check("evaluated", a.stats.evaluated, b.stats.evaluated);
      check("bound_pruned", a.stats.bound_pruned, b.stats.bound_pruned);
      check("memory_pruned", a.stats.memory_pruned, b.stats.memory_pruned);
      check("batch_calls", a.stats.batch_calls, b.stats.batch_calls);
      check("batch_placements", a.stats.batch_placements,
            b.stats.batch_placements);
      check("warm_seeded", a.stats.warm_seeded, b.stats.warm_seeded);
      check("signature_served", sig_total(a.stats), sig_total(b.stats));
    }
  }
  return ok;
}

int run_driver(bool quick) {
  // Fixed thread axis: rows stay comparable across machines and against
  // the checked-in BENCH_sweep.json (a hardware-derived axis made every
  // machine emit a different row set — single-core boxes only ever wrote
  // threads=1). Quick mode keeps the single-thread rows only.
  const std::vector<unsigned> thread_axis =
      quick ? std::vector<unsigned>{1} : std::vector<unsigned>{1, 4, 8};
  const int repeats = quick ? 2 : 5;

  std::vector<Sample> samples;
  for (bool prune : {false, true}) {
    for (unsigned threads : thread_axis) {
      for (Mode mode : kModes) {
        samples.push_back(run_once(mode, prune, threads, repeats));
        const Sample& s = samples.back();
        std::printf(
            "%-10s %s threads=%u  time=%.3fs  evaluations=%zu  compiles=%zu"
            "  batch-occupancy=%.1f  warm-seeds=%zu\n",
            mode_name(s.mode), s.prune ? "pruned    " : "exhaustive",
            s.threads, s.seconds, s.stats.evaluated,
            s.stats.signature_compiles, s.stats.batch_occupancy(),
            s.stats.warm_seeded);
      }
      const auto by_mode = [&](Mode m) -> const Sample& {
        return samples[samples.size() - 4 +
                       static_cast<std::size_t>(std::find(kModes, kModes + 4,
                                                          m) -
                                                kModes)];
      };
      std::printf("  -> batch vs scalar %.2fx, scalar vs legacy %.2fx\n",
                  by_mode(Mode::kScalar).seconds /
                      by_mode(Mode::kBatched).seconds,
                  by_mode(Mode::kLegacy).seconds /
                      by_mode(Mode::kScalar).seconds);
    }
  }

  // Every run must agree per point — engine, batching, warm starts, prune
  // setting and thread count may change the work done, never the answer.
  // The work counters must additionally agree across thread counts (checked
  // separately so the JSON's identical_optima keeps its exact meaning).
  const bool counters_ok = counters_thread_invariant(samples);
  bool identical = true;
  const std::size_t n_points = samples.front().best.size();
  for (const Sample& s : samples) {
    for (std::size_t p = 0; p < n_points; ++p) {
      if (!same_optimum(samples.front().best[p], s.best[p])) {
        identical = false;
        std::cerr << "OPTIMUM MISMATCH at grid point " << p << " ("
                  << mode_name(s.mode) << ", prune=" << s.prune
                  << ", threads=" << s.threads << ")\n";
      }
    }
  }

  write_json(samples, n_points, identical, "BENCH_sweep.json");
  std::cout << "wrote BENCH_sweep.json\n";
  if (!identical) {
    std::cerr << "per-point optima differ between runs\n";
    return 1;
  }
  if (!counters_ok) {
    std::cerr << "work counters drift across thread counts\n";
    return 1;
  }
  std::cout << "all per-point optima bitwise identical across engines\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // `--driver` (or no google-benchmark flags) runs the A/B driver that
  // emits BENCH_sweep.json; `--quick` trims it for CI; benchmark flags run
  // the registered cases.
  const bool no_args = argc == 1;
  bool driver = false, quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--driver") driver = true;
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  if (driver || quick) return run_driver(quick);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (no_args) return run_driver(false);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
