// Ablation: pipeline schedule and optimizer-sharding extensions (paper §V
// "Limitations" — interleaved schedules "can drop bubble time further";
// weights/gradients "can also be partitioned using DP at the cost of higher
// communication").
//
// GPT3-1T on 16384 B200 (NVS 8), where Fig. 4a shows ~30% bubble time:
// the interleaved schedule trades bubble for P2P volume; ZeRO-3 trades
// weight memory for per-microbatch weight AllGathers.

#include <iostream>

#include "model/transformer.hpp"
#include "report/breakdown_report.hpp"
#include "search/search.hpp"
#include "util/units.hpp"

int main() {
  using namespace tfpe;

  const model::TransformerConfig mdl = model::gpt3_1t();
  const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, 16384);

  std::vector<report::LabeledResult> rows;
  auto run = [&](const std::string& label, search::SearchOptions opts) {
    opts.strategy = parallel::TpStrategy::TP1D;
    opts.global_batch = 4096;
    rows.push_back({label, search::find_optimal(mdl, sys, opts).best});
  };

  run("1F1B baseline", {});
  {
    search::SearchOptions o;
    o.interleave_candidates = {1, 2};
    run("interleave v<=2", o);
  }
  {
    search::SearchOptions o;
    o.interleave_candidates = {1, 2, 4, 8};
    run("interleave v<=8", o);
  }
  {
    search::SearchOptions o;
    o.allow_zero3 = true;
    run("ZeRO-3 allowed", o);
  }
  {
    search::SearchOptions o;
    o.interleave_candidates = {1, 2, 4, 8};
    o.allow_zero3 = true;
    run("interleave + ZeRO-3", o);
  }

  report::print_panels(
      std::cout,
      "Ablation | pipeline schedule & optimizer sharding, GPT3-1T, 16384 B200",
      rows);
  const double base = rows.front().result.iteration();
  for (const auto& [label, r] : rows) {
    if (!r.feasible) continue;
    std::cout << "  " << label << ": "
              << util::format_fixed(100.0 * (base / r.iteration() - 1.0), 1)
              << "% speedup over baseline ("
              << util::format_time(r.iteration()) << ", bubble "
              << util::format_fixed(100.0 * r.time.bubble / r.iteration(), 1)
              << "%)\n";
  }
  return 0;
}
