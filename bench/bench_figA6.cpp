// Reproduces paper Fig. A6: training time as a function of HBM capacity and
// bandwidth varied SEPARATELY, with the B200 compute and network fixed,
// 8192 GPUs, global batch 4096.
//
// Expected shapes: GPT3-1T depends weakly on both axes, with only very small
// bandwidths inflating memory-bound time; high-capacity/low-bandwidth
// corners (LPDDR-like memory) stay competitive for both models by trading
// parallelism inefficiency for memory-access time. The ViT shows stronger
// sensitivity, with small capacities performing poorly.

#include <cmath>
#include <iostream>

#include "model/transformer.hpp"
#include "report/figure_data.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

int main() {
  using namespace tfpe;

  const std::int64_t b = 4096;
  const std::int64_t n = 8192;
  const hw::GpuSpec base = hw::b200();

  const std::vector<double> capacity_gb{48, 96, 192, 384, 768};
  const std::vector<double> bandwidth_gbs{1000, 2000, 4000, 8000, 16000};

  struct Panel {
    const char* caption;
    model::TransformerConfig mdl;
    parallel::TpStrategy strategy;
    const char* csv;
  };
  const Panel panels[] = {
      {"Fig. A6a | GPT3-1T on 8192 GPUs: HBM capacity vs bandwidth",
       model::gpt3_1t(), parallel::TpStrategy::TP1D, "figA6a.csv"},
      {"Fig. A6b | ViT-64K on 8192 GPUs: HBM capacity vs bandwidth",
       model::vit_64k(), parallel::TpStrategy::TP2D, "figA6b.csv"},
  };

  for (const Panel& panel : panels) {
    util::CsvWriter csv(panel.csv);
    csv.write_header({"capacity_gb", "bandwidth_gbs", "iter_s"});
    std::vector<std::vector<double>> grid;
    std::vector<std::string> row_labels, col_labels;
    for (double c : capacity_gb) {
      col_labels.push_back(util::format_fixed(c, 0));
    }
    for (auto it = bandwidth_gbs.rbegin(); it != bandwidth_gbs.rend(); ++it) {
      const double bw = *it;
      row_labels.push_back(util::format_fixed(bw, 0) + " GB/s");
      std::vector<double> row;
      for (double cap : capacity_gb) {
        hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, n);
        sys.gpu = base.with_memory(Bytes(cap * 1e9), BytesPerSec(bw * 1e9));
        const auto r =
            report::optimal_at_scale(panel.mdl, sys, panel.strategy, b, n);
        const double v = r.feasible ? r.iteration() : std::nan("");
        row.push_back(v);
        if (r.feasible) csv.write_row(std::vector<double>{cap, bw, v});
      }
      grid.push_back(std::move(row));
    }
    std::cout << "== " << panel.caption << " ==\n";
    std::cout << "iteration time heatmap (light = fast); columns: capacity GB\n";
    util::ascii_heatmap(std::cout, grid, row_labels, col_labels);
    std::cout << "series written to " << panel.csv << "\n\n";
  }
  return 0;
}
