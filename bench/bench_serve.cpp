// A/B benchmark of the serving Pareto search (search/serve_plan.hpp), two
// arms over the same [serving]-style grid:
//   naive — one self-compiling core::estimate_serving per (tp, pp, batch)
//           point: every point re-lowers its prompt-length prefill
//           signature from scratch (the pre-cache flow and the
//           verification reference);
//   plan  — search::run_serve_plan: one SignatureCache-shared prefill
//           lowering per (tp, pp) shape, reused verbatim across the whole
//           batch axis, plus the Pareto-front selection.
//
// The grid is the serving_smoke fixture's dense ~7B model widened on the
// batch axis, and (full driver only) Llama-3-405B on the same H200 x 8
// box, where only tp = 8 survives the KV budget and the batch axis clips.
//
// Two outputs:
//  * a google-benchmark case (BM_ServePlan) on the dense-7B grid for
//    wall-clock comparisons under the standard harness;
//  * a driver that runs both arms per model and ASSERTS the serving
//    contract BEFORE writing any artifact — every plan-arm estimate must
//    be bitwise identical to the naive arm's self-compiled one, every
//    feasible point must respect KV residency (weights + activations + R
//    reservations inside HBM and the cap), the Pareto front must be
//    non-empty and sorted (latency ascending, tok/s/GPU strictly
//    ascending), and the signature cache must report batch-axis reuse —
//    and only then writes BENCH_serve.json with the per-arm seconds,
//    points/sec, cache counters and headline TTFT / tok/s/GPU numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "search/serve_plan.hpp"

namespace {

using namespace tfpe;

/// The serving_smoke.tfpe model: dense ~7B with 8-head GQA, small enough
/// that most of the (tp, pp) grid fits one H200 NVS domain.
model::TransformerConfig dense_7b() {
  model::TransformerConfig m;
  m.name = "dense-7b";
  m.seq_len = 2048;
  m.embed = 4096;
  m.heads = 32;
  m.depth = 32;
  m.hidden = 16384;
  m.kv_heads = 8;
  m.vocab = 128256;
  return m;
}

core::ServingSpec spec_for(bool quick) {
  core::ServingSpec spec;
  spec.prompt_len = 2048;
  spec.output_len = 256;
  spec.tp = {1, 2, 4, 8};
  spec.pp = {1, 2};
  // The wide batch axis is what the cache amortizes over — and 512 drives
  // the dense model into the KV clip, so the admitted batch R < requested
  // shows up in the artifact.
  spec.batch = quick ? std::vector<std::int64_t>{1, 32, 512}
                     : std::vector<std::int64_t>{1, 8, 32, 128, 512};
  spec.kv_cap_fraction = 0.9;
  return spec;
}

/// The naive arm: the identical grid walk, but every point re-lowers its
/// own prefill signature (the overload without a cached CostSignature).
std::vector<core::InferenceEstimate> run_naive(
    const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
    const core::ServingSpec& spec) {
  const core::Workload w = spec.workload();
  std::vector<core::InferenceEstimate> points;
  for (const std::int64_t tp : spec.tp) {
    for (const std::int64_t pp : spec.pp) {
      for (const std::int64_t batch : spec.batch) {
        core::ServingConfig sc;
        sc.tp = tp;
        sc.pp = pp;
        sc.batch = batch;
        sc.kv_cap_fraction = spec.kv_cap_fraction;
        points.push_back(core::estimate_serving(mdl, sys, w, sc));
      }
    }
  }
  return points;
}

void BM_ServePlan(benchmark::State& state) {
  const auto mdl = dense_7b();
  const auto sys = hw::make_system(hw::GpuGeneration::H200, 8, 8);
  search::ServePlanOptions opts;
  opts.spec = spec_for(/*quick=*/false);
  search::ServePlanStats stats;
  std::size_t front = 0;
  for (auto _ : state) {
    const auto r = search::run_serve_plan(mdl, sys, opts);
    stats = r.stats;
    front = r.front.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["evaluated"] = static_cast<double>(stats.evaluated);
  state.counters["feasible"] = static_cast<double>(stats.feasible);
  state.counters["sig_compiles"] =
      static_cast<double>(stats.signature_compiles);
  state.counters["sig_reuses"] = static_cast<double>(stats.signature_reuses);
  state.counters["front"] = static_cast<double>(front);
}
BENCHMARK(BM_ServePlan)->Unit(benchmark::kMillisecond);

bool same_estimate(const core::InferenceEstimate& a,
                   const core::InferenceEstimate& b) {
  if (a.feasible != b.feasible || a.reason != b.reason) return false;
  if (!a.feasible) return true;
  return a.admitted_batch == b.admitted_batch && a.ttft == b.ttft &&
         a.tpot == b.tpot && a.request_latency == b.request_latency &&
         a.tokens_per_sec == b.tokens_per_sec &&
         a.tokens_per_sec_per_gpu == b.tokens_per_sec_per_gpu &&
         a.prefill_fraction == b.prefill_fraction &&
         a.mem.total().value() == b.mem.total().value() &&
         a.kv_bytes_per_request.value() == b.kv_bytes_per_request.value() &&
         a.decode_floor == b.decode_floor;
}

/// The serving contract, checked BEFORE any artifact is written: cached
/// estimates bitwise-match the self-compiled reference, every feasible
/// point is KV-resident, the front is non-empty and properly ordered, and
/// the signature cache actually shared lowerings across the batch axis.
bool verify(const model::TransformerConfig& mdl, const hw::SystemConfig& sys,
            const search::ServePlanResult& plan,
            const std::vector<core::InferenceEstimate>& naive) {
  bool ok = true;
  if (plan.points.size() != naive.size()) {
    std::cerr << mdl.name << ": grid size mismatch (" << plan.points.size()
              << " vs " << naive.size() << ")\n";
    return false;
  }
  const double hbm = sys.gpu.hbm_capacity.value();
  for (std::size_t i = 0; i < plan.points.size(); ++i) {
    const auto& p = plan.points[i];
    if (!same_estimate(p, naive[i])) {
      ok = false;
      std::cerr << mdl.name << ": ESTIMATE MISMATCH at point " << i << " (tp="
                << p.cfg.tp << " pp=" << p.cfg.pp << " batch=" << p.cfg.batch
                << ")\n";
    }
    if (!p.feasible) continue;
    const bool resident =
        p.mem.total().value() <= hbm &&
        p.mem.kv_cache.value() <= p.cfg.kv_cap_fraction * hbm &&
        p.admitted_batch >= 1 && p.admitted_batch <= p.cfg.batch;
    if (!resident) {
      ok = false;
      std::cerr << mdl.name << ": KV RESIDENCY VIOLATED at point " << i
                << "\n";
    }
  }
  if (plan.front.empty()) {
    ok = false;
    std::cerr << mdl.name << ": empty Pareto front\n";
  }
  for (std::size_t k = 0; k + 1 < plan.front.size(); ++k) {
    const auto& a = plan.points[plan.front[k]];
    const auto& b = plan.points[plan.front[k + 1]];
    if (a.request_latency > b.request_latency ||
        a.tokens_per_sec_per_gpu >= b.tokens_per_sec_per_gpu) {
      ok = false;
      std::cerr << mdl.name << ": front ordering violated at rank " << k
                << "\n";
    }
  }
  if (plan.stats.signature_reuses == 0) {
    ok = false;
    std::cerr << mdl.name << ": signature cache never reused a lowering\n";
  }
  return ok;
}

struct Sample {
  std::string model;
  double naive_seconds = 0;
  double plan_seconds = 0;
  search::ServePlanResult plan;
};

Sample run_model(const model::TransformerConfig& mdl,
                 const hw::SystemConfig& sys, const core::ServingSpec& spec,
                 int repeats) {
  search::ServePlanOptions opts;
  opts.spec = spec;
  Sample s;
  s.model = mdl.name;
  s.naive_seconds = 1e30;
  s.plan_seconds = 1e30;
  std::vector<core::InferenceEstimate> naive;
  // min-of-N; both arms rebuild their state from scratch each repeat, so
  // the naive arm honestly pays one prefill lowering per grid point.
  for (int rep = 0; rep < repeats; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    auto n = run_naive(mdl, sys, spec);
    s.naive_seconds = std::min(
        s.naive_seconds,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    t0 = std::chrono::steady_clock::now();
    auto p = search::run_serve_plan(mdl, sys, opts);
    s.plan_seconds = std::min(
        s.plan_seconds,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    if (rep + 1 == repeats) {
      naive = std::move(n);
      s.plan = std::move(p);
    }
  }
  if (!verify(mdl, sys, s.plan, naive)) {
    std::cerr << "serving contract violated — no artifact written\n";
    std::exit(1);
  }
  return s;
}

void write_json(const std::vector<Sample>& samples, std::size_t grid_points,
                const std::string& path) {
  std::ofstream os(path);
  os << "{\n  \"system\": \"h200 x 8 (nvs 8)\",\n  \"prompt_len\": 2048,\n"
     << "  \"output_len\": 256,\n  \"grid_points\": " << grid_points
     << ",\n  \"identical_estimates\": true,\n  \"runs\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    const auto& st = s.plan.stats;
    // Headline points: the fastest (front head) and the densest (front
    // tail) of the Pareto front.
    const auto& fast = s.plan.points[s.plan.front.front()];
    const auto& dense = s.plan.points[s.plan.front.back()];
    os << "    {\"model\": \"" << s.model << "\""
       << ", \"naive_seconds\": " << s.naive_seconds
       << ", \"plan_seconds\": " << s.plan_seconds
       << ", \"speedup\": "
       << (s.plan_seconds > 0 ? s.naive_seconds / s.plan_seconds : 0.0)
       << ", \"points_per_sec\": "
       << (s.plan_seconds > 0
               ? static_cast<double>(st.evaluated) / s.plan_seconds
               : 0.0)
       << ", \"evaluated\": " << st.evaluated
       << ", \"feasible\": " << st.feasible
       << ", \"signature_compiles\": " << st.signature_compiles
       << ", \"signature_reuses\": " << st.signature_reuses
       << ", \"front_size\": " << s.plan.front.size()
       << ", \"fastest_ttft_ms\": " << 1e3 * fast.ttft
       << ", \"fastest_tp\": " << fast.cfg.tp
       << ", \"densest_tok_s_gpu\": " << dense.tokens_per_sec_per_gpu
       << ", \"densest_tp\": " << dense.cfg.tp
       << ", \"densest_admitted\": " << dense.admitted_batch << "}"
       << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int run_driver(bool quick) {
  // Quick mode (CI perf smoke): dense-7B only on a trimmed batch axis.
  // The full driver adds Llama-3-405B, where the KV budget rejects every
  // shape but tp = 8 and clips the admitted batch.
  const auto sys = hw::make_system(hw::GpuGeneration::H200, 8, 8);
  const auto spec = spec_for(quick);
  std::vector<model::TransformerConfig> models{dense_7b()};
  if (!quick) models.push_back(model::llama3_405b());

  std::vector<Sample> samples;
  std::size_t grid_points = 0;
  for (const auto& mdl : models) {
    samples.push_back(run_model(mdl, sys, spec, quick ? 2 : 3));
    const Sample& s = samples.back();
    const auto& st = s.plan.stats;
    grid_points = st.evaluated;
    std::printf(
        "%-12s naive=%.4fs  plan=%.4fs  speedup=%.2fx  feasible=%zu/%zu"
        "  compiles=%zu  reuses=%zu  front=%zu\n",
        s.model.c_str(), s.naive_seconds, s.plan_seconds,
        s.naive_seconds / s.plan_seconds, st.feasible, st.evaluated,
        st.signature_compiles, st.signature_reuses, s.plan.front.size());
  }
  std::cout << "all cached estimates bitwise identical to the self-compiled "
               "arm; every feasible point KV-resident\n";

  write_json(samples, grid_points, "BENCH_serve.json");
  std::cout << "wrote BENCH_serve.json\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // `--driver` (or no google-benchmark flags) runs the A/B driver that
  // emits BENCH_serve.json; `--quick` trims it for CI; benchmark flags run
  // the registered case.
  const bool no_args = argc == 1;
  bool driver = false, quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--driver") driver = true;
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  if (driver || quick) return run_driver(quick);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (no_args) return run_driver(false);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
