// Regenerates the paper's analytic tables:
//   Table I   — 1D TP per-op shapes, collectives and volumes,
//   Table II  — 2D TP,
//   Table A2  — 2D TP SUMMA,
//   Table A3  — GPU/network parameters.
// Volumes are printed in elements (bytes / 2) for a GPT3-1T block with
// b = 1 to match the paper's symbolic "Vol" column numerically.

#include <iostream>

#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "ops/op_factory.hpp"
#include "parallel/layer_builder.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace tfpe;

void print_layer_table(const std::string& caption,
                       const parallel::LayerCost& layer) {
  util::TextTable t;
  t.set_header({"operation", "partitioned tensors", "unit", "collective(s)",
                "Vol fwd [elems]", "stored [elems]"});
  for (const auto& op : layer.ops) {
    std::string colls;
    Bytes vol;
    for (const auto& r : op.fwd_comm) {
      if (!colls.empty()) colls += "+";
      colls += ops::to_string(r.collective) + "(" + ops::to_string(r.group) + ")";
      vol += r.bytes;
    }
    if (colls.empty()) colls = "-";
    t.add_row(
        {op.name, op.detail.empty() ? "-" : op.detail, ops::to_string(op.unit),
         colls, util::format_fixed(vol.value() / ops::kBytesPerElement, 0),
         util::format_fixed(op.stored_bytes.value() / ops::kBytesPerElement,
                            0)});
  }
  std::cout << "== " << caption << " ==\n";
  t.print(std::cout);
  std::cout << "per-GPU weight params/block: "
            << util::format_fixed(layer.weight_params, 0)
            << "; PP boundary bytes/microbatch: "
            << util::format_bytes(layer.pp_boundary_bytes) << "\n\n";
}

}  // namespace

int main() {
  const model::TransformerConfig mdl = model::gpt3_1t();
  const std::int64_t B = 1;

  {
    parallel::ParallelConfig cfg;
    cfg.strategy = parallel::TpStrategy::TP1D;
    cfg.n1 = 8;
    print_layer_table("Table I | 1D TP over nt=8 GPUs (GPT3-1T, b=1)",
                      parallel::build_layer(mdl, cfg, B));
  }
  {
    parallel::ParallelConfig cfg;
    cfg.strategy = parallel::TpStrategy::TP2D;
    cfg.n1 = 4;
    cfg.n2 = 2;
    print_layer_table("Table II | 2D TP over 4x2 GPUs (GPT3-1T, b=1)",
                      parallel::build_layer(mdl, cfg, B));
  }
  {
    parallel::ParallelConfig cfg;
    cfg.strategy = parallel::TpStrategy::Summa2D;
    cfg.n1 = 4;
    cfg.n2 = 2;
    cfg.nb = 4;
    print_layer_table("Table A2 | 2D TP SUMMA over 4x2 GPUs, nb=4 (GPT3-1T, b=1)",
                      parallel::build_layer(mdl, cfg, B));
  }

  // Table A3.
  util::TextTable t;
  t.set_header({"description", "A100", "H200", "B200"});
  const hw::GpuSpec g[] = {hw::a100(), hw::h200(), hw::b200()};
  const hw::NetworkSpec n[] = {hw::network_preset(hw::GpuGeneration::A100),
                               hw::network_preset(hw::GpuGeneration::H200),
                               hw::network_preset(hw::GpuGeneration::B200)};
  auto row = [&](const std::string& name, auto getter) {
    t.add_row({name, getter(0), getter(1), getter(2)});
  };
  row("Tensor core FP16 (TFLOPs/s)", [&](int i) {
    return util::format_fixed(g[i].tensor_flops.value() / 1e12, 0);
  });
  row("Vector FP16 (TFLOPs/s)", [&](int i) {
    return util::format_fixed(g[i].vector_flops.value() / 1e12, 0);
  });
  row("Flops latency (s)", [&](int i) {
    return util::format_fixed(g[i].flops_latency.value(), 5);
  });
  row("HBM bandwidth (GB/s)", [&](int i) {
    return util::format_fixed(g[i].hbm_bandwidth.value() / 1e9, 0);
  });
  row("HBM capacity (GB)", [&](int i) {
    return util::format_fixed(g[i].hbm_capacity.value() / 1e9, 0);
  });
  row("NVS 1-dir bandwidth (GB/s)", [&](int i) {
    return util::format_fixed(n[i].nvs_bandwidth.value() / 1e9, 0);
  });
  row("NVS latency (s)", [&](int i) {
    return util::format_fixed(n[i].nvs_latency.value() * 1e6, 1) + "e-6";
  });
  row("IB bandwidth (GB/s)", [&](int i) {
    return util::format_fixed(n[i].ib_bandwidth.value() / 1e9, 0);
  });
  row("IB latency (s)", [&](int i) {
    return util::format_fixed(n[i].ib_latency.value() * 1e6, 1) + "e-6";
  });
  std::cout << "== Table A3 | GPU and network parameters ==\n";
  t.print(std::cout);
  return 0;
}
