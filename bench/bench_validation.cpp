// Reproduces the paper's §IV "Empirical Validation": moderate-scale tests on
// 512 GPUs (Perlmutter-like A100 system, 4 GPUs/node) with global batch
// 1024, for GPT3-175B (1D TP) and a 32K-sequence ViT (2D TP).
//
// The paper compares the performance model against Megatron-LM runs and
// reports 4-15% (GPT3, optimal + 4 sub-optimal configs) and 2-26% (ViT)
// iteration-time errors with consistent ordering. This repo substitutes the
// hardware runs with the discrete-event cluster simulator (DESIGN.md); the
// same error metrics and the ordering consistency check are reported.

#include <algorithm>
#include <iostream>
#include <vector>

#include "sim/validation.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace tfpe;

struct Case {
  std::string label;
  parallel::ParallelConfig cfg;
};

void run_block(const std::string& caption, const model::TransformerConfig& mdl,
               const std::vector<Case>& cases, std::int64_t b) {
  const hw::SystemConfig sys = hw::perlmutter(512);
  util::TextTable t;
  t.set_header({"config", "model [s/iter]", "simulated [s/iter]", "error %"});
  std::vector<double> analytic, simulated;
  for (const Case& c : cases) {
    const sim::ValidationPoint p =
        sim::validate_iteration(mdl, sys, c.cfg, b, c.label);
    analytic.push_back(p.analytic_seconds);
    simulated.push_back(p.simulated_seconds);
    t.add_row({c.label, util::format_fixed(p.analytic_seconds, 3),
               util::format_fixed(p.simulated_seconds, 3),
               util::format_fixed(p.pct_error(), 1)});
  }
  std::cout << "== " << caption << " ==\n";
  t.print(std::cout);
  // Ordering consistency (the paper's trend check).
  int concordant = 0, total = 0;
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    for (std::size_t j = i + 1; j < analytic.size(); ++j) {
      ++total;
      if ((analytic[i] - analytic[j]) * (simulated[i] - simulated[j]) > 0) {
        ++concordant;
      }
    }
  }
  std::cout << "ordering concordance: " << concordant << "/" << total
            << " config pairs ranked identically by model and simulation\n\n";
}

parallel::ParallelConfig cfg_1d(std::int64_t nt, std::int64_t np,
                                std::int64_t nd, std::int64_t b) {
  parallel::ParallelConfig c;
  c.strategy = parallel::TpStrategy::TP1D;
  c.n1 = nt;
  c.np = np;
  c.nd = nd;
  c.microbatches = b / nd;  // microbatch size 1
  c.nvs1 = std::min<std::int64_t>(4, nt);
  return c;
}

parallel::ParallelConfig cfg_2d(std::int64_t n1, std::int64_t n2,
                                std::int64_t np, std::int64_t nd,
                                std::int64_t b) {
  parallel::ParallelConfig c;
  c.strategy = parallel::TpStrategy::TP2D;
  c.n1 = n1;
  c.n2 = n2;
  c.np = np;
  c.nd = nd;
  c.microbatches = b / nd;
  c.nvs1 = std::min<std::int64_t>(4, n1);
  c.nvs2 = std::min<std::int64_t>(4 / c.nvs1, n2);
  return c;
}

}  // namespace

int main() {
  const std::int64_t b = 1024;

  run_block(
      "Validation | GPT3-175B, 512 A100 (4/node), b=1024, 1D TP",
      model::gpt3_175b(),
      {
          {"optimal (4,16,8)", cfg_1d(4, 16, 8, b)},
          {"sub-opt (8,8,8)", cfg_1d(8, 8, 8, b)},
          {"sub-opt (2,32,8)", cfg_1d(2, 32, 8, b)},
          {"sub-opt (4,8,16)", cfg_1d(4, 8, 16, b)},
          {"sub-opt (16,4,8)", cfg_1d(16, 4, 8, b)},
      },
      b);

  run_block(
      "Validation | ViT-32K, 512 A100 (4/node), b=1024, 2D TP",
      model::vit_32k(),
      {
          {"near-opt (2,4,4,16)", cfg_2d(2, 4, 4, 16, b)},
          {"sub-opt (4,2,4,16)", cfg_2d(4, 2, 4, 16, b)},
          {"sub-opt (2,4,8,8)", cfg_2d(2, 4, 8, 8, b)},
          {"sub-opt (8,1,4,16)", cfg_2d(8, 1, 4, 16, b)},
      },
      b);
  return 0;
}
