// Reproduces paper Fig. 5: end-to-end training time (days) vs number of
// GPUs for three GPU generations (A100, H200, B200) and three NVS domain
// sizes (4, 8, 64).
//   (a) GPT3-1T, 1D TP, pre-training on 1T tokens.
//   (b) ViT-64K, 2D TP, 80 epochs over 40 years of hourly ERA5.
//
// Expected shapes: large generation-to-generation gains for both models
// (tensor-core + network bandwidth); NVS effects at the smallest and largest
// scales for GPT3-1T but across all scales for the ViT.

#include <iostream>

#include "core/training_estimate.hpp"
#include "report/figure_data.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace tfpe;

  struct Panel {
    const char* caption;
    model::TransformerConfig mdl;
    parallel::TpStrategy strategy;
    bool tokens;  // token budget (GPT) vs sample budget (ViT)
    std::int64_t min_scale;
  };
  const Panel panels[] = {
      {"Fig. 5a | GPT3-1T 1D TP, 1T tokens", model::gpt3_1t(),
       parallel::TpStrategy::TP1D, true, 512},
      {"Fig. 5b | ViT-64K 2D TP, 80 epochs ERA5", model::vit_64k(),
       parallel::TpStrategy::TP2D, false, 256},
  };
  const std::int64_t b = 4096;

  for (const Panel& panel : panels) {
    std::cout << "== " << panel.caption << " ==\n";
    util::TextTable table;
    std::vector<std::string> header{"system"};
    const auto scales = report::pow2_range(panel.min_scale, 16384);
    for (auto n : scales) header.push_back(std::to_string(n));
    table.set_header(header);

    std::vector<util::Series> chart;
    util::CsvWriter csv(std::string("fig5") +
                        (panel.tokens ? "a" : "b") + ".csv");
    csv.write_header({"gpu", "nvs", "n", "days"});

    for (auto gen : {hw::GpuGeneration::A100, hw::GpuGeneration::H200,
                     hw::GpuGeneration::B200}) {
      for (std::int64_t nvs : {std::int64_t{4}, std::int64_t{8},
                               std::int64_t{64}}) {
        const hw::SystemConfig sys = hw::make_system(gen, nvs, 16384);
        std::vector<std::string> row{hw::to_string(gen) + " NVS" +
                                     std::to_string(nvs)};
        util::Series series{row[0], {}, {}};
        for (auto n : scales) {
          const auto r =
              report::optimal_at_scale(panel.mdl, sys, panel.strategy, b, n);
          if (!r.feasible) {
            row.push_back("-");
            continue;
          }
          const auto est =
              panel.tokens
                  ? core::estimate_token_training(panel.mdl, b, r.iteration(),
                                                  core::kGpt3PretrainTokens)
                  : core::estimate_sample_training(b, r.iteration(),
                                                   core::kEra5TrainingSamples);
          row.push_back(util::format_fixed(est.days, 2));
          series.x.push_back(static_cast<double>(n));
          series.y.push_back(est.days);
          csv.write_row(std::vector<std::string>{
              hw::to_string(gen), std::to_string(nvs), std::to_string(n),
              util::format_fixed(est.days, 4)});
        }
        table.add_row(row);
        chart.push_back(std::move(series));
      }
    }
    std::cout << "training time in DAYS vs number of GPUs\n";
    table.print(std::cout);
    // One representative chart per generation at NVS 8 to keep it readable.
    std::vector<util::Series> picked;
    for (const auto& s : chart) {
      if (s.name.find("NVS8") != std::string::npos) picked.push_back(s);
    }
    util::ascii_chart(std::cout, picked);
    std::cout << '\n';
  }
  return 0;
}
