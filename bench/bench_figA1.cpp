// Reproduces paper Fig. A1: AllGather time vs communication volume on
// 32 A100 GPUs, comparing the analytical formulae against an independent
// execution — the paper used NCCL tests on Perlmutter; this repo substitutes
// the discrete-event ring simulator (see DESIGN.md).
//
// Two placements are shown, mirroring the paper's NVL2/NVL4 curves: 2 GPUs
// per node and 4 GPUs per node. Expected shape: theory tracks the simulated
// times, and more GPUs per node effectively increases the slow-network
// bandwidth (the NVL4 curve sits below NVL2).

#include <iostream>

#include "comm/collective_model.hpp"
#include "hw/system.hpp"
#include "sim/validation.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace tfpe;

  const hw::NetworkSpec net = hw::network_preset(hw::GpuGeneration::A100);
  const std::int64_t g = 32;

  util::TextTable table;
  table.set_header({"volume", "placement", "theory", "simulated", "err %"});
  util::CsvWriter csv("figA1.csv");
  csv.write_header({"bytes", "gpus_per_node", "theory_s", "sim_s", "pct_err"});

  std::vector<util::Series> chart;
  for (std::int64_t nvs : {std::int64_t{2}, std::int64_t{4}}) {
    util::Series theory{"theory NVL" + std::to_string(nvs), {}, {}};
    util::Series sim{"sim NVL" + std::to_string(nvs), {}, {}};
    for (double v = 1e6; v <= 16e9; v *= 4) {
      const sim::ValidationPoint p = sim::validate_collective(
          net, ops::Collective::AllGather, Bytes(v), g, nvs,
          "AG " + util::format_bytes(Bytes(v)));
      table.add_row({util::format_bytes(v), "NVL" + std::to_string(nvs),
                     util::format_time(p.analytic_seconds),
                     util::format_time(p.simulated_seconds),
                     util::format_fixed(p.pct_error(), 1)});
      csv.write_row(std::vector<double>{v, static_cast<double>(nvs),
                                        p.analytic_seconds,
                                        p.simulated_seconds, p.pct_error()});
      theory.x.push_back(v);
      theory.y.push_back(p.analytic_seconds);
      sim.x.push_back(v);
      sim.y.push_back(p.simulated_seconds);
    }
    chart.push_back(std::move(theory));
    chart.push_back(std::move(sim));
  }

  std::cout << "== Fig. A1 | AllGather time vs volume, 32 A100, theory vs "
               "discrete-event simulation ==\n";
  table.print(std::cout);
  util::ascii_chart(std::cout, chart);
  std::cout << "series written to figA1.csv\n";
  return 0;
}
