// Microbenchmarks of the batched evaluation kernels in isolation — the
// units the sweep/codesign hot path is built from — so a kernel-level
// regression is visible without running a whole sweep:
//   BM_ScalarPlacementWalk   — time_placement per enumerated placement (the
//                              pre-batch baseline the kernels replace);
//   BM_BatchedPlacements     — time_placements_batch, warm BatchScratch,
//                              transient per-call pricer;
//   BM_BatchedPlacementsPricer — the generation-major configuration: a
//                              capture_fabric=false bind plus an external
//                              FabricPricer whose place memo stays warm
//                              across calls (what a sweep chain runs);
//   BM_BindScalar / BM_BindBatched — the per-(signature, system) bind;
//   BM_FabricPricerPrice     — pricing one collective from cached
//                              sub-results vs the full fabric walk.
//
// `--smoke` runs a fast bitwise lockstep check of every arm against the
// scalar walk and exits nonzero on any mismatch; tests/CMakeLists-style
// registration in bench/CMakeLists.txt wires it into ctest so the kernels
// cannot drift from the scalar reference without failing the suite. The
// exhaustive randomized twin lives in tests/test_signature.cpp.

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/batched_signature.hpp"
#include "search/search.hpp"
#include "search/sweep.hpp"

namespace {

using namespace tfpe;

constexpr std::int64_t kBatch = 4096;

/// One representative heavy candidate: the first valid GPT3-1T config with
/// a non-trivial enumerated placement set on the given system.
struct Fixture {
  model::TransformerConfig mdl = model::gpt3_1t();
  hw::SystemConfig sys;
  parallel::ParallelConfig cfg;
  std::vector<std::array<std::int64_t, 4>> placements;

  explicit Fixture(std::int64_t nvs = 8)
      : sys(hw::make_system(hw::GpuGeneration::H200, nvs, 4096)) {
    search::SearchOptions sopts;
    sopts.strategy = parallel::TpStrategy::TP1D;
    sopts.global_batch = kBatch;
    for (const parallel::ParallelConfig& c :
         search::expand_candidates(mdl, sys, sopts)) {
      if (c.invalid_reason(mdl, sys, kBatch)) continue;
      const auto pls = search::enumerate_placements(c, sys.nvs_domain);
      if (pls.size() < 4) continue;
      cfg = c;
      placements = pls;
      return;
    }
    std::fprintf(stderr, "no candidate with a non-trivial placement set\n");
    std::abort();
  }
};

void BM_ScalarPlacementWalk(benchmark::State& state) {
  Fixture fx;
  const core::CostSignature sig =
      core::compile_signature(fx.mdl, fx.cfg, kBatch);
  const core::SystemTiming base = core::bind_system(sig, fx.sys);
  parallel::ParallelConfig cfg = fx.cfg;
  for (auto _ : state) {
    for (const auto& pl : fx.placements) {
      cfg.nvs1 = pl[0];
      cfg.nvs2 = pl[1];
      cfg.nvsp = pl[2];
      cfg.nvsd = pl[3];
      benchmark::DoNotOptimize(core::time_placement(sig, base, fx.sys, cfg));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.placements.size()));
  state.counters["placements"] = static_cast<double>(fx.placements.size());
}
BENCHMARK(BM_ScalarPlacementWalk)->Unit(benchmark::kMicrosecond);

void BM_BatchedPlacements(benchmark::State& state) {
  Fixture fx;
  const core::CostSignature sig =
      core::compile_signature(fx.mdl, fx.cfg, kBatch);
  const core::BatchedSignature bat = core::lower_batched(sig);
  const core::SystemTiming base = core::bind_system(sig, fx.sys);
  core::BatchScratch scratch;
  std::vector<core::PlacementTiming> out;
  for (auto _ : state) {
    core::time_placements_batch(sig, bat, base, fx.sys, fx.cfg, fx.placements,
                                {}, out, &scratch);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.placements.size()));
  state.counters["placements"] = static_cast<double>(fx.placements.size());
}
BENCHMARK(BM_BatchedPlacements)->Unit(benchmark::kMicrosecond);

void BM_BatchedPlacementsPricer(benchmark::State& state) {
  Fixture fx;
  const core::CostSignature sig =
      core::compile_signature(fx.mdl, fx.cfg, kBatch);
  const core::BatchedSignature bat = core::lower_batched(sig);
  const hw::Topology fabric = fx.sys.resolved_fabric();
  const comm::FabricPricer pricer(fabric);
  const core::SystemTiming base =
      core::bind_system_batched(sig, bat, fx.sys, {}, /*capture_fabric=*/false);
  core::BatchScratch scratch;
  std::vector<core::PlacementTiming> out;
  for (auto _ : state) {
    core::time_placements_batch(sig, bat, base, fx.sys, fx.cfg, fx.placements,
                                {}, out, &scratch, &pricer);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.placements.size()));
  state.counters["placements"] = static_cast<double>(fx.placements.size());
}
BENCHMARK(BM_BatchedPlacementsPricer)->Unit(benchmark::kMicrosecond);

void BM_BindScalar(benchmark::State& state) {
  Fixture fx;
  const core::CostSignature sig =
      core::compile_signature(fx.mdl, fx.cfg, kBatch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::bind_system(sig, fx.sys));
  }
}
BENCHMARK(BM_BindScalar)->Unit(benchmark::kMicrosecond);

void BM_BindBatched(benchmark::State& state) {
  Fixture fx;
  const core::CostSignature sig =
      core::compile_signature(fx.mdl, fx.cfg, kBatch);
  const core::BatchedSignature bat = core::lower_batched(sig);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::bind_system_batched(sig, bat, fx.sys, {}, false));
  }
}
BENCHMARK(BM_BindBatched)->Unit(benchmark::kMicrosecond);

void BM_FabricPricerPrice(benchmark::State& state) {
  const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, 4096);
  const hw::Topology fabric = sys.resolved_fabric();
  const comm::FabricPricer pricer(fabric);
  const comm::FabricPricer::Placed pl =
      pricer.place(comm::GroupPlacement{64, 8});
  const bool walk = state.range(0) != 0;
  for (auto _ : state) {
    if (walk) {
      benchmark::DoNotOptimize(comm::collective_time(
          fabric, ops::Collective::AllReduce, Bytes(1e8),
          comm::GroupPlacement{64, 8}));
    } else {
      benchmark::DoNotOptimize(
          pricer.price(ops::Collective::AllReduce, Bytes(1e8), pl));
    }
  }
}
BENCHMARK(BM_FabricPricerPrice)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"walk"})
    ->Unit(benchmark::kNanosecond);

bool same_pt(const core::PlacementTiming& a, const core::PlacementTiming& b) {
  return a.time.compute == b.time.compute && a.time.memory == b.time.memory &&
         a.time.tp_comm == b.time.tp_comm && a.time.pp_comm == b.time.pp_comm &&
         a.time.dp_comm == b.time.dp_comm && a.time.bubble == b.time.bubble &&
         a.time.optimizer == b.time.optimizer &&
         a.t_fwd_stage.value() == b.t_fwd_stage.value() &&
         a.t_bwd_stage.value() == b.t_bwd_stage.value();
}

/// ctest smoke: every kernel arm bitwise against the scalar walk, on a few
/// (generation, nvs) fixtures. Exit 0 only if every placement matches.
int run_smoke() {
  int mismatches = 0;
  std::size_t compared = 0;
  for (std::int64_t nvs : {4, 8, 16}) {
    Fixture fx(nvs);
    const core::CostSignature sig =
        core::compile_signature(fx.mdl, fx.cfg, kBatch);
    const core::BatchedSignature bat = core::lower_batched(sig);
    const core::SystemTiming base = core::bind_system(sig, fx.sys);
    const hw::Topology fabric = fx.sys.resolved_fabric();
    const comm::FabricPricer pricer(fabric);
    const core::SystemTiming lean = core::bind_system_batched(
        sig, bat, fx.sys, {}, /*capture_fabric=*/false);
    core::BatchScratch scratch;
    std::vector<core::PlacementTiming> plain, priced;
    core::time_placements_batch(sig, bat, base, fx.sys, fx.cfg, fx.placements,
                                {}, plain, &scratch);
    core::time_placements_batch(sig, bat, lean, fx.sys, fx.cfg, fx.placements,
                                {}, priced, &scratch, &pricer);
    parallel::ParallelConfig cfg = fx.cfg;
    for (std::size_t p = 0; p < fx.placements.size(); ++p) {
      cfg.nvs1 = fx.placements[p][0];
      cfg.nvs2 = fx.placements[p][1];
      cfg.nvsp = fx.placements[p][2];
      cfg.nvsd = fx.placements[p][3];
      const core::PlacementTiming ref =
          core::time_placement(sig, base, fx.sys, cfg);
      for (const auto* got : {&plain[p], &priced[p]}) {
        if (!same_pt(ref, *got)) {
          ++mismatches;
          std::fprintf(stderr, "MISMATCH nvs=%lld placement %zu (%s)\n",
                       static_cast<long long>(nvs), p,
                       got == &plain[p] ? "plain" : "pricer");
        }
        ++compared;
      }
    }
  }
  std::printf("smoke: %zu placement timings compared, %d mismatches\n",
              compared, mismatches);
  return mismatches == 0 && compared > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
