// google-benchmark microbenchmarks of the performance model itself: the
// paper's claim is that the analytic search is "orders of magnitude faster
// than experimentation" — this bench quantifies the cost of one evaluation
// and of full S3 searches at several scales.

#include <benchmark/benchmark.h>

#include "core/evaluator.hpp"
#include "parallel/layer_builder.hpp"
#include "search/search.hpp"

namespace {

using namespace tfpe;

parallel::ParallelConfig fig1_optimum() {
  parallel::ParallelConfig c;
  c.strategy = parallel::TpStrategy::TP1D;
  c.n1 = 8;
  c.np = 64;
  c.nd = 32;
  c.microbatches = 128;
  c.nvs1 = 8;
  return c;
}

void BM_BuildLayer1D(benchmark::State& state) {
  const auto mdl = model::gpt3_1t();
  const auto cfg = fig1_optimum();
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::build_layer(mdl, cfg, 1));
  }
}
BENCHMARK(BM_BuildLayer1D);

void BM_EvaluateConfig(benchmark::State& state) {
  const auto mdl = model::gpt3_1t();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 16384);
  const auto cfg = fig1_optimum();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate(mdl, sys, cfg, 4096));
  }
}
BENCHMARK(BM_EvaluateConfig);

void BM_EvaluateWithPrebuiltLayer(benchmark::State& state) {
  const auto mdl = model::gpt3_1t();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 16384);
  const auto cfg = fig1_optimum();
  const auto layer = parallel::build_layer(mdl, cfg, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::evaluate_with_layer(mdl, sys, cfg, 4096, layer));
  }
}
BENCHMARK(BM_EvaluateWithPrebuiltLayer);

void BM_FullSearch(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto mdl = model::gpt3_1t();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, n);
  search::SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 4096;
  std::size_t evaluated = 0;
  for (auto _ : state) {
    const auto r = search::find_optimal(mdl, sys, opts);
    evaluated = r.evaluated;
    benchmark::DoNotOptimize(r);
  }
  state.counters["configs"] = static_cast<double>(evaluated);
}
BENCHMARK(BM_FullSearch)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_FullSearchSumma(benchmark::State& state) {
  const auto mdl = model::gpt3_1t();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, 4096);
  search::SearchOptions opts;
  opts.strategy = parallel::TpStrategy::Summa2D;
  opts.global_batch = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::find_optimal(mdl, sys, opts));
  }
}
BENCHMARK(BM_FullSearchSumma)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
