// Ablation: communication-hiding extensions (paper §V "Limitations" —
// "more lower-level opportunities for TP communications to be overlapped",
// "offloading to the CPU ... may be very useful for large sequences") plus
// the NCCL tree-algorithm option.
//
//  * TP overlap sweep on the ViT (TP-comm bound per Fig. 4b).
//  * Activation offload sweep on the ViT (HBM-bound per Fig. 4b).
//  * Ring-vs-tree collective times across group sizes and volumes.

#include <iostream>

#include "comm/collective_model.hpp"
#include "model/transformer.hpp"
#include "report/breakdown_report.hpp"
#include "search/search.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace tfpe;

  const model::TransformerConfig vit = model::vit_64k();
  const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, 4096);

  {
    std::vector<report::LabeledResult> rows;
    for (double ov : {0.0, 0.5, 0.8}) {
      search::SearchOptions opts;
      opts.strategy = parallel::TpStrategy::TP2D;
      opts.global_batch = 4096;
      opts.eval.tp_overlap = ov;
      rows.push_back({"tp_overlap=" + util::format_fixed(ov, 1),
                      search::find_optimal(vit, sys, opts).best});
    }
    report::print_panels(std::cout,
                         "Ablation | TP-communication overlap, ViT-64K, 4096 B200",
                         rows);
  }

  {
    std::vector<report::LabeledResult> rows;
    for (double off : {0.0, 0.5, 0.9}) {
      search::SearchOptions opts;
      opts.strategy = parallel::TpStrategy::TP2D;
      opts.global_batch = 4096;
      opts.eval.activation_offload = off;
      rows.push_back({"offload=" + util::format_fixed(off, 1),
                      search::find_optimal(vit, sys, opts).best});
    }
    report::print_panels(
        std::cout, "Ablation | activation offload to host, ViT-64K, 4096 B200",
        rows);
    std::cout << "Offload frees HBM (less TP needed to fit) at the price of\n"
                 "host-link traffic per microbatch.\n\n";
  }

  {
    util::TextTable t;
    t.set_header({"group", "volume", "ring AR", "tree AR", "winner"});
    auto net = hw::network_preset(hw::GpuGeneration::B200);
    for (std::int64_t g : {std::int64_t{64}, std::int64_t{1024}}) {
      for (double v : {1e5, 1e7, 1e9}) {
        const comm::GroupPlacement pl{g, 8};
        const Seconds ring =
            comm::collective_time(net, ops::Collective::AllReduce, Bytes(v), pl);
        const Seconds tree =
            comm::tree_time(net, ops::Collective::AllReduce, Bytes(v), pl);
        t.add_row({std::to_string(g), util::format_bytes(v),
                   util::format_time(ring), util::format_time(tree),
                   tree < ring ? "tree" : "ring"});
      }
    }
    std::cout << "== Ablation | ring vs double-binary-tree AllReduce ==\n";
    t.print(std::cout);
    std::cout << "Trees win the latency-bound (small-volume, large-group)\n"
                 "corner; rings keep the bandwidth-bound regime.\n";
  }
  return 0;
}
