// Reproduces paper Fig. A4: relative speedup of the two 2D TP strategies
// over 1D TP for GPT3-1T, across GPU generations, NVS domain sizes and GPU
// counts. Expected shape: speedups clustered around 0-10%, with SUMMA most
// helpful in resource-constrained regimes (small scale, A100 capacity, small
// NVS) and plain 2D TP stronger at large scale; higher generations and
// larger NVS domains shrink the speedups.

#include <iostream>

#include "model/transformer.hpp"
#include "report/figure_data.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace tfpe;

  const model::TransformerConfig mdl = model::gpt3_1t();
  const std::int64_t b = 4096;

  util::TextTable table;
  table.set_header({"gpu", "nvs", "n", "1D iter", "2D speedup %",
                    "SUMMA speedup %"});
  util::CsvWriter csv("figA4.csv");
  csv.write_header({"gpu", "nvs", "n", "iter_1d_s", "speedup_2d_pct",
                    "speedup_summa_pct"});

  for (auto gen : {hw::GpuGeneration::A100, hw::GpuGeneration::B200}) {
    for (std::int64_t nvs : {std::int64_t{4}, std::int64_t{8}, std::int64_t{64}}) {
      const hw::SystemConfig sys = hw::make_system(gen, nvs, 16384);
      for (std::int64_t n : {std::int64_t{1024}, std::int64_t{4096},
                             std::int64_t{16384}}) {
        const auto r1d = report::optimal_at_scale(
            mdl, sys, parallel::TpStrategy::TP1D, b, n);
        const auto r2d = report::optimal_at_scale(
            mdl, sys, parallel::TpStrategy::TP2D, b, n);
        const auto rsu = report::optimal_at_scale(
            mdl, sys, parallel::TpStrategy::Summa2D, b, n);
        if (!r1d.feasible) {
          table.add_row({hw::to_string(gen), std::to_string(nvs),
                         std::to_string(n), "infeasible", "-", "-"});
          continue;
        }
        auto speedup = [&](const core::EvalResult& r) {
          return r.feasible
                     ? 100.0 * (r1d.iteration() / r.iteration() - 1.0)
                     : 0.0;
        };
        const double s2d = speedup(r2d);
        const double ssu = speedup(rsu);
        table.add_row({hw::to_string(gen), std::to_string(nvs),
                       std::to_string(n), util::format_time(r1d.iteration()),
                       util::format_fixed(s2d, 1), util::format_fixed(ssu, 1)});
        csv.write_row(std::vector<std::string>{
            hw::to_string(gen), std::to_string(nvs), std::to_string(n),
            util::format_fixed(r1d.iteration(), 6), util::format_fixed(s2d, 3),
            util::format_fixed(ssu, 3)});
      }
    }
  }
  std::cout << "== Fig. A4 | GPT3-1T: speedup of 2D TP variants over 1D TP ==\n";
  table.print(std::cout);
  std::cout << "series written to figA4.csv\n";
  return 0;
}
