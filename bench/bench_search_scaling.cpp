// A/B benchmark of the S3 search engines: the prune-and-memoize
// branch-and-bound (SearchOptions::prune = true, the default) against the
// exhaustive brute-force sweep, on the full GPT3-1T search at several
// machine sizes.
//
// Two outputs:
//  * google-benchmark cases (BM_FindOptimal/<n_gpus>/<prune>) for
//    wall-clock comparisons under the standard benchmark harness;
//  * a driver that runs one timed search per (n_gpus, engine) pair and
//    writes BENCH_search.json — candidate count, evaluations, build_layer
//    calls, cache hits, pruned counts and configs/sec — so the >= 5x
//    build_layer reduction and the speedup are machine-checkable.

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "search/search.hpp"

namespace {

using namespace tfpe;

search::SearchOptions search_opts(bool prune) {
  search::SearchOptions opts;
  opts.strategy = parallel::TpStrategy::TP1D;
  opts.global_batch = 4096;
  opts.prune = prune;
  return opts;
}

void BM_FindOptimal(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const bool prune = state.range(1) != 0;
  const auto mdl = model::gpt3_1t();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, n);
  const auto opts = search_opts(prune);
  search::SearchStats stats;
  std::size_t evaluated = 0;
  for (auto _ : state) {
    const auto r = search::find_optimal(mdl, sys, opts);
    stats = r.stats;
    evaluated = r.evaluated;
    benchmark::DoNotOptimize(r);
  }
  state.counters["candidates"] = static_cast<double>(stats.candidates);
  state.counters["evaluations"] = static_cast<double>(evaluated);
  state.counters["build_layer"] = static_cast<double>(stats.build_layer_calls);
  state.counters["bound_pruned"] = static_cast<double>(stats.bound_pruned);
}
BENCHMARK(BM_FindOptimal)
    ->ArgsProduct({{512, 2048, 8192}, {0, 1}})
    ->ArgNames({"gpus", "prune"})
    ->Unit(benchmark::kMillisecond);

struct Sample {
  std::int64_t n_gpus = 0;
  bool prune = false;
  double seconds = 0;
  std::size_t evaluated = 0;
  search::SearchStats stats;
};

Sample run_once(std::int64_t n, bool prune) {
  const auto mdl = model::gpt3_1t();
  const auto sys = hw::make_system(hw::GpuGeneration::B200, 8, n);
  Sample s;
  s.n_gpus = n;
  s.prune = prune;
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = search::find_optimal(mdl, sys, search_opts(prune));
  s.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  s.evaluated = r.evaluated;
  s.stats = r.stats;
  return s;
}

void write_json(const std::vector<Sample>& samples, const std::string& path) {
  std::ofstream os(path);
  os << "{\n  \"model\": \"GPT3-1T\",\n  \"global_batch\": 4096,\n"
     << "  \"runs\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    const double rate =
        s.seconds > 0 ? static_cast<double>(s.stats.candidates) / s.seconds
                      : 0.0;
    os << "    {\"n_gpus\": " << s.n_gpus
       << ", \"engine\": \"" << (s.prune ? "pruned" : "exhaustive") << "\""
       << ", \"seconds\": " << s.seconds
       << ", \"configs_per_sec\": " << rate
       << ", \"candidates\": " << s.stats.candidates
       << ", \"evaluations\": " << s.evaluated
       << ", \"build_layer_calls\": " << s.stats.build_layer_calls
       << ", \"layer_cache_hits\": " << s.stats.layer_cache_hits
       << ", \"placement_sets\": " << s.stats.placement_sets
       << ", \"placement_cache_hits\": " << s.stats.placement_cache_hits
       << ", \"signature_compiles\": " << s.stats.signature_compiles
       << ", \"signature_cache_hits\": " << s.stats.signature_cache_hits
       << ", \"bound_pruned\": " << s.stats.bound_pruned
       << ", \"memory_pruned\": " << s.stats.memory_pruned
       << ", \"rounds\": " << s.stats.rounds << "}"
       << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void run_driver() {
  std::vector<Sample> samples;
  for (std::int64_t n : {512, 2048, 8192}) {
    for (bool prune : {false, true}) {
      samples.push_back(run_once(n, prune));
      const Sample& s = samples.back();
      std::cout << "n_gpus=" << s.n_gpus
                << (s.prune ? " pruned    " : " exhaustive")
                << "  time=" << s.seconds << "s"
                << "  candidates=" << s.stats.candidates
                << "  evaluations=" << s.evaluated
                << "  build_layer=" << s.stats.build_layer_calls
                << "  bound_pruned=" << s.stats.bound_pruned
                << "  memory_pruned=" << s.stats.memory_pruned << "\n";
    }
    const Sample& brute = samples[samples.size() - 2];
    const Sample& pruned = samples.back();
    std::cout << "  -> speedup " << brute.seconds / pruned.seconds
              << "x, build_layer reduction "
              << static_cast<double>(brute.stats.build_layer_calls) /
                     static_cast<double>(pruned.stats.build_layer_calls)
              << "x\n";
  }
  write_json(samples, "BENCH_search.json");
  std::cout << "wrote BENCH_search.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  // `--driver` (or no google-benchmark flags) runs the A/B driver that
  // emits BENCH_search.json; benchmark flags run the registered cases.
  const bool no_args = argc == 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--driver") {
      run_driver();
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (no_args) {
    run_driver();
    return 0;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
