// Reproduces paper Fig. 3: GPT3-1T with 2D TP SUMMA on 16384 B200, global
// batch 4096, two NVS domain sizes.
//
// First five configurations: (nt, np) = (32, 1), m = 1, varying the split of
// nt into (n1, n2). Remaining configurations: (nt, np) = (8, 128) with large
// m. Expected shapes: on NVS 8 the fastest keeps n2 = 1 (pure 1D) with
// (8,1,128); on NVS 64 high-DP wins with (8,4,1).
//
// For each configuration the SUMMA panel count nb and the NVS placement are
// optimized, as in the paper's protocol.

#include <iostream>

#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "report/breakdown_report.hpp"
#include "search/search.hpp"

namespace {

tfpe::core::EvalResult best_over_nb(const tfpe::model::TransformerConfig& mdl,
                                    const tfpe::hw::SystemConfig& sys,
                                    tfpe::parallel::ParallelConfig cfg,
                                    std::int64_t b) {
  tfpe::core::EvalResult best;
  best.reason = "no panel count tried";
  for (std::int64_t nb : {1, 2, 4, 8, 16}) {
    cfg.nb = nb;
    const auto r = tfpe::search::best_placement(mdl, sys, cfg, b);
    if (r.feasible && (!best.feasible || r.iteration() < best.iteration())) {
      best = r;
    }
    if (!r.feasible && !best.feasible) best = r;
  }
  return best;
}

}  // namespace

int main() {
  using namespace tfpe;

  const model::TransformerConfig mdl = model::gpt3_1t();
  const std::int64_t b = 4096;

  for (std::int64_t nvs : {std::int64_t{8}, std::int64_t{64}}) {
    const hw::SystemConfig sys =
        hw::make_system(hw::GpuGeneration::B200, nvs, 16384);
    std::vector<report::LabeledResult> results;

    // High-DP block: nt = 32, np = 1, one microbatch.
    for (std::int64_t n1 : {32, 16, 8, 4, 2}) {
      parallel::ParallelConfig cfg;
      cfg.strategy = parallel::TpStrategy::Summa2D;
      cfg.n1 = n1;
      cfg.n2 = 32 / n1;
      cfg.np = 1;
      cfg.nd = sys.n_gpus / 32;
      cfg.microbatches = 1;
      results.push_back({"(" + std::to_string(cfg.n1) + "," +
                             std::to_string(cfg.n2) + ",np=1)",
                         best_over_nb(mdl, sys, cfg, b)});
    }
    // Low-DP block: nt = 8, np = 128, large m.
    for (std::int64_t n1 : {8, 4, 2, 1}) {
      parallel::ParallelConfig cfg;
      cfg.strategy = parallel::TpStrategy::Summa2D;
      cfg.n1 = n1;
      cfg.n2 = 8 / n1;
      cfg.np = 128;
      cfg.nd = sys.n_gpus / 8 / 128;
      cfg.microbatches = b / cfg.nd;  // microbatch size 1
      results.push_back({"(" + std::to_string(cfg.n1) + "," +
                             std::to_string(cfg.n2) + ",np=128)",
                         best_over_nb(mdl, sys, cfg, b)});
    }

    report::print_panels(std::cout,
                         "Fig. 3 | GPT3-1T, 2D TP SUMMA, 16384 B200, NVS " +
                             std::to_string(nvs),
                         results);
    std::size_t best = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].result.feasible &&
          (!results[best].result.feasible ||
           results[i].result.iteration() < results[best].result.iteration())) {
        best = i;
      }
    }
    std::cout << "fastest on NVS " << nvs << ": " << results[best].label
              << "\n\n";
    report::write_results_csv("fig3_nvs" + std::to_string(nvs) + ".csv",
                              results);
  }
  return 0;
}
