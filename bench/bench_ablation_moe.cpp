// Ablation: mixture-of-experts vs dense at iso-parameter count (extension;
// the paper's §V outlook lists architectures beyond dense LLMs).
//
// GPT3-1T (dense, ~1.0T params) vs GPT-MoE-1T (64 experts, top-2, ~1.4T
// params, ~6% active per token) on the same clusters. MoE buys most of the
// dense model's capacity at a fraction of the FLOPs, paying AllToAll
// traffic over the expert-parallel (DP) group and expert weight memory.

#include <iostream>

#include "core/training_estimate.hpp"
#include "model/transformer.hpp"
#include "report/breakdown_report.hpp"
#include "search/search.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace tfpe;

  const model::TransformerConfig dense = model::gpt3_1t();
  const model::TransformerConfig moe = model::gpt_moe_1t();
  const std::int64_t b = 4096;

  util::TextTable t;
  t.set_header({"n GPUs", "model", "params", "best config", "iter",
                "tokens/s/GPU"});
  std::vector<report::LabeledResult> rows;
  for (std::int64_t n : {std::int64_t{2048}, std::int64_t{8192}}) {
    const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, n);
    for (const auto* mdl : {&dense, &moe}) {
      search::SearchOptions opts;
      opts.strategy = parallel::TpStrategy::TP1D;
      opts.global_batch = b;
      const auto r = search::find_optimal(*mdl, sys, opts).best;
      rows.push_back({mdl->name + " @" + std::to_string(n), r});
      if (!r.feasible) {
        t.add_row({std::to_string(n), mdl->name, "-", "infeasible: " + r.reason,
                   "-", "-"});
        continue;
      }
      const double tokens_per_s =
          static_cast<double>(b) * static_cast<double>(mdl->seq_len) /
          r.iteration() / static_cast<double>(n);
      t.add_row({std::to_string(n), mdl->name,
                 util::format_fixed(mdl->total_params() / 1e12, 2) + "T",
                 r.cfg.describe(), util::format_time(r.iteration()),
                 util::format_fixed(tokens_per_s, 0)});
    }
  }
  std::cout << "== Ablation | dense vs mixture-of-experts at ~1T params ==\n";
  t.print(std::cout);
  std::cout << '\n';
  report::print_panels(std::cout, "time breakdowns", rows);
  std::cout << "MoE's AllToAll dispatch/combine appears under DP comm;\n"
               "the expert weights appear as higher HBM use per DP width.\n";
  return 0;
}
