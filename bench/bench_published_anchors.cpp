// External anchors: compare the model's predicted model-FLOPs-utilization
// (MFU) against PUBLISHED end-to-end measurements from the systems
// literature — an independent check beyond the paper's own validation.
//
// Anchors (aggregate achieved throughput as a fraction of peak FP16):
//   * Megatron-LM (Narayanan et al., SC'21): 1T-parameter GPT on 3072 A100,
//     163 TFLOP/s/GPU achieved = 52% of peak; GPT-3 175B on 1536 A100: 51%.
//   * The paper itself: O(30) days for 1T params x 1T tokens on 16K A100
//     implies ~40-60% MFU.
//
// The model is expected to land in the same band (it omits some kernel
// inefficiencies, so a mild optimistic bias is expected and reported).

#include <iostream>

#include "calibrate/calibration.hpp"
#include "model/transformer.hpp"
#include "report/figure_data.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace tfpe;

// Typical achieved fraction of peak tensor-core throughput for large FP16
// matmuls on A100 (cuBLAS): the kernel-level loss the analytic model
// deliberately excludes. Applying it is the calibration workflow of
// docs/VALIDATION.md with a literature-derived constant.
constexpr double kA100MatmulEfficiency = 0.70;

double predicted_mfu(const model::TransformerConfig& mdl, std::int64_t n,
                     std::int64_t b, bool derated) {
  hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::A100, 8, n);
  if (derated) {
    sys = calibrate::apply_efficiencies(sys, kA100MatmulEfficiency,
                                        sys.net.efficiency);
  }
  const auto r =
      report::optimal_at_scale(mdl, sys, parallel::TpStrategy::TP1D, b, n);
  if (!r.feasible) return 0.0;
  const double useful = 6.0 * static_cast<double>(mdl.total_params()) *
                        static_cast<double>(b) *
                        static_cast<double>(mdl.seq_len);
  // MFU against the UN-derated peak (as published numbers are reported).
  return useful / (r.iteration() * hw::a100().tensor_flops.value() *
                   static_cast<double>(n));
}

}  // namespace

int main() {
  util::TextTable t;
  t.set_header({"anchor", "published MFU", "model (ideal kernels)",
                "model (70% matmul eff)", "delta pts"});

  struct Anchor {
    const char* name;
    model::TransformerConfig mdl;
    std::int64_t n;
    std::int64_t b;
    double published;
  };
  model::TransformerConfig gpt1t = model::gpt3_1t();
  gpt1t.vocab = 51200;  // published numbers include the output head
  model::TransformerConfig gpt175 = model::gpt3_175b();
  gpt175.vocab = 51200;

  const Anchor anchors[] = {
      // Megatron's actual 1T run: (t,p,d) = (8,64,6), batch 2304.
      {"Megatron 1T @3072 A100 (SC'21)", gpt1t, 3072, 2304, 0.52},
      {"Megatron 175B @1536 A100 (SC'21)", gpt175, 1536, 1536, 0.51},
      {"Megatron 175B @512 A100", gpt175, 512, 1024, 0.50},
  };
  bool all_in_band = true;
  for (const Anchor& a : anchors) {
    const double ideal = predicted_mfu(a.mdl, a.n, a.b, false);
    const double derated = predicted_mfu(a.mdl, a.n, a.b, true);
    const double delta = 100.0 * (derated - a.published);
    const bool ok = delta > -12.0 && delta < 12.0;
    all_in_band = all_in_band && ok;
    t.add_row({a.name, util::format_fixed(100 * a.published, 1) + "%",
               util::format_fixed(100 * ideal, 1) + "%",
               util::format_fixed(100 * derated, 1) + "%",
               util::format_fixed(delta, 1) + (ok ? "" : "  <-- out of band")});
  }
  std::cout << "== Published-throughput anchors (A100 systems) ==\n";
  t.print(std::cout);
  std::cout
      << (all_in_band
              ? "All anchors within +/-12 MFU points once the known kernel\n"
                "efficiency (70% of peak for A100 matmuls) is applied.\n"
              : "WARNING: anchor outside the expected band.\n");
  return all_in_band ? 0 : 1;
}
