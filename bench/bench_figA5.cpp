// Reproduces paper Fig. A5: training time for GPT3-1T and ViT-64K on 8192
// GPUs as a function of (tensor-core FLOP rate) x (HBM capacity+bandwidth),
// with the B200 network held fixed, global batch 4096.
//
// Both memory capacity and bandwidth scale together along the x axis (as in
// the paper); the vector rate scales with the tensor rate. Expected shape:
// FLOP rate is the primary driver for GPT3-1T (columns nearly flat), while
// the ViT shows real sensitivity along the memory axis.

#include <cmath>
#include <iostream>

#include "model/transformer.hpp"
#include "report/figure_data.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

int main() {
  using namespace tfpe;

  const std::int64_t b = 4096;
  const std::int64_t n = 8192;
  const hw::GpuSpec base = hw::b200();

  // Sweep factors relative to B200: memory (capacity & bandwidth together)
  // and compute (tensor & vector together).
  const std::vector<double> mem_scale{0.25, 0.5, 1.0, 2.0};
  const std::vector<double> flop_scale{0.125, 0.25, 0.5, 1.0, 2.0};

  struct Panel {
    const char* caption;
    model::TransformerConfig mdl;
    parallel::TpStrategy strategy;
    const char* csv;
  };
  const Panel panels[] = {
      {"Fig. A5a | GPT3-1T on 8192 GPUs: FLOP rate vs HBM cap/bw",
       model::gpt3_1t(), parallel::TpStrategy::TP1D, "figA5a.csv"},
      {"Fig. A5b | ViT-64K on 8192 GPUs: FLOP rate vs HBM cap/bw",
       model::vit_64k(), parallel::TpStrategy::TP2D, "figA5b.csv"},
  };

  for (const Panel& panel : panels) {
    util::CsvWriter csv(panel.csv);
    csv.write_header({"flop_scale", "mem_scale", "iter_s"});
    std::vector<std::vector<double>> grid;
    std::vector<std::string> row_labels, col_labels;
    for (double ms : mem_scale) {
      col_labels.push_back(util::format_fixed(ms, 2) + "x");
    }
    for (auto it = flop_scale.rbegin(); it != flop_scale.rend(); ++it) {
      const double fs = *it;
      row_labels.push_back(util::format_fixed(fs, 3) + "x FLOPs");
      std::vector<double> row;
      for (double ms : mem_scale) {
        hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, n);
        sys.gpu = base
                      .with_compute(base.tensor_flops * fs,
                                    base.vector_flops * fs)
                      .with_memory(base.hbm_capacity * ms,
                                   base.hbm_bandwidth * ms);
        const auto r =
            report::optimal_at_scale(panel.mdl, sys, panel.strategy, b, n);
        const double v = r.feasible ? r.iteration() : std::nan("");
        row.push_back(v);
        if (r.feasible) {
          csv.write_row(std::vector<double>{fs, ms, v});
        }
      }
      grid.push_back(std::move(row));
    }
    std::cout << "== " << panel.caption << " ==\n";
    std::cout << "iteration time heatmap (light = fast); columns: HBM scale\n";
    util::ascii_heatmap(std::cout, grid, row_labels, col_labels);
    std::cout << "series written to " << panel.csv << "\n\n";
  }
  return 0;
}
