// A/B benchmark of the architecture x configuration co-design engine
// (search/codesign.hpp), three arms over the same iso-parameter family x
// hardware grid:
//   naive         — one find_optimal per (shape, point): the pre-engine
//                   flow and the verification reference;
//   engine        — memoized enumeration + warm-start chains + batched
//                   placement scan, full exact per-shape matrix
//                   (prune_shapes = false);
//   engine-prune  — the same plus shape-level floor pruning against the
//                   cross-shape incumbents (the production default).
//
// The family is the GPT3-1T iso-parameter band of Anthony et al. (arXiv
// 2401.14489): every (depth, heads, head_dim, kv_heads, moe_experts) shape
// within +/-4% of 1T params — >= 200 shapes — crossed with the
// A100/H200/B200 generations at 1024 GPUs.
//
// Two outputs:
//  * google-benchmark cases (BM_Codesign/<mode>) on a trimmed family for
//    wall-clock comparisons under the standard harness;
//  * a driver that runs each (mode, threads) combination over the full
//    family, ASSERTS the exactness contract BEFORE writing any artifact —
//    every scanned (shape, point) result and every per-point winner must
//    be bitwise identical to the naive arm's find_optimal matrix, and the
//    pruned arm must report nonzero shapes_pruned — and only then writes
//    BENCH_codesign.json with the per-arm seconds, shape-points/sec and
//    work counters plus the engine-vs-naive speedups, so the >= 5x
//    per-shape throughput gain is machine-checkable.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "search/codesign.hpp"

namespace {

using namespace tfpe;

constexpr std::int64_t kGpus = 1024;
constexpr std::int64_t kBatch = 4096;
constexpr double kTolerance = 0.04;

enum class Mode { kNaive, kEngine, kEnginePrune };
constexpr Mode kModes[] = {Mode::kNaive, Mode::kEngine, Mode::kEnginePrune};

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kNaive: return "naive";
    case Mode::kEngine: return "engine";
    case Mode::kEnginePrune: return "engine-prune";
  }
  return "?";
}

/// The GPT3-1T iso-parameter band: depths 32..160, heads 32..256,
/// head_dim {128, 160}, MHA and 8-head GQA, dense and 8-expert MoE.
std::vector<model::TransformerConfig> family() {
  model::ShapeFamilyOptions fam;
  fam.tolerance = kTolerance;
  fam.kv_heads = {0, 8};
  fam.moe_experts = {0, 8};
  return model::shape_family(model::gpt3_1t(), fam);
}

std::vector<hw::SystemConfig> grid() {
  return search::hardware_grid(
      {hw::GpuGeneration::A100, hw::GpuGeneration::H200,
       hw::GpuGeneration::B200},
      {4, 8, 16, 32, 64}, kGpus);
}

search::CodesignOptions codesign_opts(Mode mode, unsigned threads) {
  search::CodesignOptions opts;
  opts.sweep.search.strategy = parallel::TpStrategy::TP1D;
  opts.sweep.search.global_batch = kBatch;
  opts.sweep.use_signatures = mode != Mode::kNaive;
  opts.sweep.batch = mode != Mode::kNaive;
  opts.sweep.warm_start = mode != Mode::kNaive;
  opts.sweep.threads = threads;
  opts.prune_shapes = mode == Mode::kEnginePrune;
  return opts;
}

void BM_Codesign(benchmark::State& state) {
  const Mode mode = kModes[state.range(0)];
  // Trimmed family (one head_dim, MHA only, dense + MoE so the prune arm
  // has something to cut) so the harness cases iterate in milliseconds;
  // the driver runs the full band.
  model::ShapeFamilyOptions fam;
  fam.tolerance = kTolerance;
  fam.head_dims = {128};
  fam.moe_experts = {0, 8};
  const auto shapes = model::shape_family(model::gpt3_1t(), fam);
  const auto points = grid();
  const auto opts = codesign_opts(mode, 1);
  search::CodesignStats stats;
  for (auto _ : state) {
    const auto r = search::run_codesign(shapes, points, opts);
    stats = r.stats;
    benchmark::DoNotOptimize(r);
  }
  state.counters["shapes"] = static_cast<double>(stats.shapes);
  state.counters["shape_points"] =
      static_cast<double>(stats.shapes * stats.points);
  state.counters["shapes_pruned"] = static_cast<double>(stats.shapes_pruned);
  state.counters["evaluations"] = static_cast<double>(stats.evaluated);
}
BENCHMARK(BM_Codesign)
    ->ArgsProduct({{0, 1, 2}})
    ->ArgNames({"mode"})
    ->Unit(benchmark::kMillisecond);

struct Sample {
  Mode mode = Mode::kNaive;
  unsigned threads = 0;
  double seconds = 0;
  search::CodesignResult result;
};

Sample run_once(const std::vector<model::TransformerConfig>& shapes,
                const std::vector<hw::SystemConfig>& points, Mode mode,
                unsigned threads, int repeats) {
  const auto opts = codesign_opts(mode, threads);
  Sample s;
  s.mode = mode;
  s.threads = threads;
  s.seconds = 1e30;
  // min-of-N timing; every run builds its caches from scratch, so repeats
  // stay honest about the enumeration and compile work.
  for (int rep = 0; rep < repeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = search::run_codesign(shapes, points, opts);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    s.seconds = std::min(s.seconds, sec);
    if (rep + 1 == repeats) s.result = std::move(r);
  }
  return s;
}

bool same_result(const core::EvalResult& a, const core::EvalResult& b) {
  if (a.feasible != b.feasible) return false;
  if (!a.feasible) return true;
  return a.cfg.describe() == b.cfg.describe() &&
         a.iteration() == b.iteration() &&
         a.mem.total().value() == b.mem.total().value();
}

/// The exactness contract, checked against the naive reference BEFORE any
/// artifact is written: every scanned (shape, point) entry matches the
/// reference matrix bitwise, every pruned entry is flagged (never a
/// fabricated optimum), and the per-point winners agree on both the shape
/// index and the full result.
bool verify_against(const search::CodesignResult& ref, const Sample& s) {
  bool ok = true;
  for (std::size_t i = 0; i < ref.shapes.size(); ++i) {
    for (std::size_t p = 0; p < ref.best.size(); ++p) {
      if (s.result.pruned[i][p]) continue;
      if (!same_result(ref.per_shape[i][p], s.result.per_shape[i][p])) {
        ok = false;
        std::cerr << "PER-SHAPE MISMATCH shape=" << ref.shapes[i].name
                  << " point=" << p << " (" << mode_name(s.mode)
                  << ", threads=" << s.threads << ")\n";
      }
    }
  }
  for (std::size_t p = 0; p < ref.best.size(); ++p) {
    if (ref.best[p].shape != s.result.best[p].shape ||
        !same_result(ref.best[p].best, s.result.best[p].best)) {
      ok = false;
      std::cerr << "WINNER MISMATCH at grid point " << p << " ("
                << mode_name(s.mode) << ", threads=" << s.threads << ")\n";
    }
  }
  return ok;
}

void write_json(const std::vector<Sample>& samples, std::size_t n_shapes,
                std::size_t n_points, const std::string& path) {
  std::ofstream os(path);
  os << "{\n  \"model\": \"GPT3-1T\",\n  \"tolerance\": " << kTolerance
     << ",\n  \"shapes\": " << n_shapes
     << ",\n  \"global_batch\": " << kBatch << ",\n  \"n_gpus\": " << kGpus
     << ",\n  \"grid\": {\"generations\": [\"a100\", \"h200\", \"b200\"], "
     << "\"nvs_domains\": [4, 8, 16, 32, 64], \"points\": " << n_points
     << "},\n  \"identical_optima\": true,\n  \"runs\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    const auto& st = s.result.stats;
    const double pairs = static_cast<double>(st.shapes * st.points);
    os << "    {\"mode\": \"" << mode_name(s.mode) << "\""
       << ", \"prune_shapes\": "
       << (s.mode == Mode::kEnginePrune ? "true" : "false")
       << ", \"threads\": " << s.threads
       << ", \"seconds\": " << s.seconds
       << ", \"shape_points_per_sec\": "
       << (s.seconds > 0 ? pairs / s.seconds : 0.0)
       << ", \"shapes_pruned\": " << st.shapes_pruned
       << ", \"shapes_evaluated\": " << st.shapes_evaluated
       << ", \"feasible_shape_points\": " << st.feasible_shape_points
       << ", \"enumerations\": " << st.enumerations
       << ", \"enumeration_hits\": " << st.enumeration_hits
       << ", \"candidates\": " << st.candidates
       << ", \"evaluations\": " << st.evaluated
       << ", \"bound_pruned\": " << st.bound_pruned
       << ", \"memory_pruned\": " << st.memory_pruned
       << ", \"warm_seeded\": " << st.warm_seeded
       << ", \"warm_seed_feasible\": " << st.warm_seed_feasible
       << ", \"signature_compiles\": " << st.signature_compiles
       << ", \"signature_cache_hits\": " << st.signature_cache_hits
       << ", \"signature_reuses\": " << st.signature_reuses
       << ", \"batch_calls\": " << st.batch_calls
       << ", \"batch_placements\": " << st.batch_placements << "}"
       << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"speedups\": [\n";
  // Each engine arm against the naive per-shape baseline at equal threads.
  bool first = true;
  for (const Sample& s : samples) {
    if (s.mode == Mode::kNaive) continue;
    for (const Sample& b : samples) {
      if (b.mode != Mode::kNaive || b.threads != s.threads) continue;
      if (!first) os << ",\n";
      first = false;
      os << "    {\"mode\": \"" << mode_name(s.mode) << "\""
         << ", \"baseline\": \"naive\""
         << ", \"threads\": " << s.threads
         << ", \"baseline_seconds\": " << b.seconds
         << ", \"seconds\": " << s.seconds
         << ", \"speedup\": " << b.seconds / s.seconds << "}";
    }
  }
  os << "\n  ]\n}\n";
}

int run_driver(bool quick) {
  // Quick mode (CI perf smoke): the trimmed BM_Codesign family — one
  // head_dim, MHA only, dense + MoE so the prune arm still fires — at
  // threads=1, so the exactness contract and the engine arms run in
  // seconds while the full driver keeps the >= 200-shape band.
  std::vector<model::TransformerConfig> shapes;
  if (quick) {
    model::ShapeFamilyOptions fam;
    fam.tolerance = kTolerance;
    fam.head_dims = {128};
    fam.moe_experts = {0, 8};
    shapes = model::shape_family(model::gpt3_1t(), fam);
  } else {
    shapes = family();
  }
  const auto points = grid();
  std::printf("family: %zu shapes iso to 1T (+/-%.0f%%), %zu grid points\n",
              shapes.size(), 100.0 * kTolerance, points.size());
  if (!quick && shapes.size() < 200) {
    std::cerr << "family shrank below 200 shapes — widen the axes\n";
    return 1;
  }

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_axis{1};
  if (!quick && cores > 1) thread_axis.push_back(cores);

  std::vector<Sample> samples;
  for (unsigned threads : thread_axis) {
    for (Mode mode : kModes) {
      // The naive arm re-runs find_optimal for every pair and dominates the
      // wall clock; one repeat is stable at this size. The engine arms take
      // min-of-3.
      const int repeats = mode == Mode::kNaive ? 1 : (quick ? 2 : 3);
      samples.push_back(run_once(shapes, points, mode, threads, repeats));
      const Sample& s = samples.back();
      const auto& st = s.result.stats;
      std::printf(
          "%-12s threads=%u  time=%.3fs  shape-points/s=%.1f  pruned=%zu"
          "  evaluations=%zu  warm-seeds=%zu\n",
          mode_name(s.mode), s.threads, s.seconds,
          static_cast<double>(st.shapes * st.points) / s.seconds,
          st.shapes_pruned, st.evaluated, st.warm_seeded);
    }
  }

  // --- The exactness contract, asserted BEFORE the JSON artifact. ---
  const search::CodesignResult& ref = samples.front().result;  // naive, t=1
  bool ok = true;
  for (const Sample& s : samples) ok = verify_against(ref, s) && ok;
  const Sample* pruned_arm = nullptr;
  for (const Sample& s : samples) {
    if (s.mode == Mode::kEnginePrune) pruned_arm = &s;
  }
  if (pruned_arm && pruned_arm->result.stats.shapes_pruned == 0) {
    std::cerr << "shape-level floor pruning never fired\n";
    ok = false;
  }
  if (!ok) {
    std::cerr << "exactness contract violated — no artifact written\n";
    return 1;
  }
  std::cout << "all scanned results and winners bitwise identical to the "
               "naive per-shape arm\n";

  write_json(samples, shapes.size(), points.size(), "BENCH_codesign.json");
  std::cout << "wrote BENCH_codesign.json\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // `--driver` (or no google-benchmark flags) runs the A/B driver that
  // emits BENCH_codesign.json; `--quick` trims it for CI; benchmark flags
  // run the registered cases.
  const bool no_args = argc == 1;
  bool driver = false, quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--driver") driver = true;
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  if (driver || quick) return run_driver(quick);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (no_args) return run_driver(false);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
