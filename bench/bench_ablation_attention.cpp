// Ablation: attention-architecture variants (paper §V "Outlook": "linear
// (or windowed) attention versions of the ViT" and other architecture types
// as future work, motivated by the ViT's heavy dependence on NVS/HBM).
//
//  * ViT-64K with full vs windowed (two window sizes) vs linear attention:
//    how much of the 2D-TP communication and HBM pressure the paper
//    attributes to the O(l^2) attention actually disappears.
//  * Llama3-405B with grouped-query vs full multi-head attention.

#include <iostream>

#include "core/training_estimate.hpp"
#include "model/transformer.hpp"
#include "report/breakdown_report.hpp"
#include "search/search.hpp"
#include "util/units.hpp"

int main() {
  using namespace tfpe;

  {
    const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, 4096);
    std::vector<report::LabeledResult> rows;
    const model::TransformerConfig variants[] = {
        model::vit_64k(),
        model::vit_64k_windowed(16200),
        model::vit_64k_windowed(4050),
        model::vit_64k_linear(),
    };
    for (const auto& mdl : variants) {
      search::SearchOptions opts;
      opts.strategy = parallel::TpStrategy::TP2D;
      opts.global_batch = 4096;
      rows.push_back({mdl.name, search::find_optimal(mdl, sys, opts).best});
    }
    {
      // Ring attention on the dense ViT: overlap the K/V movement.
      search::SearchOptions opts;
      opts.strategy = parallel::TpStrategy::TP2D;
      opts.global_batch = 4096;
      opts.allow_ring_attention = true;
      rows.push_back({"ViT-64K + ring attention",
                      search::find_optimal(model::vit_64k(), sys, opts).best});
    }
    report::print_panels(std::cout,
                         "Ablation | ViT attention variants, 2D TP, 4096 B200",
                         rows);
    const double base = rows.front().result.iteration();
    for (const auto& [label, r] : rows) {
      if (!r.feasible) continue;
      std::cout << "  " << label << ": "
                << util::format_fixed(base / r.iteration(), 2)
                << "x faster than full attention, HBM "
                << util::format_bytes(r.mem.total()) << ", TP "
                << r.cfg.tp() << "\n";
    }
    std::cout << '\n';
  }

  {
    const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 8, 2048);
    std::vector<report::LabeledResult> rows;
    model::TransformerConfig gqa = model::llama3_405b();
    model::TransformerConfig mha = gqa;
    mha.name = "Llama3-405B-MHA";
    mha.kv_heads = 0;
    for (const auto& mdl : {gqa, mha}) {
      search::SearchOptions opts;
      opts.strategy = parallel::TpStrategy::Summa2D;
      opts.global_batch = 1024;
      rows.push_back({mdl.name, search::find_optimal(mdl, sys, opts).best});
    }
    report::print_panels(
        std::cout, "Ablation | grouped-query vs multi-head, Llama3-405B, SUMMA",
        rows);
  }
  return 0;
}
