// Reproduces paper Fig. 1: GPT3-1T with 1D TP on 16384 B200 GPUs
// (NVS domain 8), global batch 4096, microbatch size 1, PP fixed at 64.
// TP and DP vary against each other; the paper reports convex iteration
// time with a local minimum at (m, nt, nd) = (128, 8, 32) using ~40 GB HBM.
//
// For each parallelization configuration the NVS placement is optimized,
// as in the paper's Q1 protocol.

#include <iostream>

#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "report/breakdown_report.hpp"
#include "search/search.hpp"

int main() {
  using namespace tfpe;

  const model::TransformerConfig mdl = model::gpt3_1t();
  const hw::SystemConfig sys =
      hw::make_system(hw::GpuGeneration::B200, 8, 16384);
  const std::int64_t b = 4096;
  const std::int64_t np = 64;
  const std::int64_t nt_nd = sys.n_gpus / np;  // 256

  std::vector<report::LabeledResult> results;
  char label = 'A';
  // nt from 1 to 64 doubling; nd = 256 / nt; microbatch size fixed at 1
  // so m = b / nd.
  for (std::int64_t nt = 1; nt <= 64; nt *= 2, ++label) {
    parallel::ParallelConfig cfg;
    cfg.strategy = parallel::TpStrategy::TP1D;
    cfg.n1 = nt;
    cfg.np = np;
    cfg.nd = nt_nd / nt;
    cfg.microbatches = b / cfg.nd;  // local microbatch size 1
    results.push_back({std::string("Config ") + label,
                       search::best_placement(mdl, sys, cfg, b)});
  }

  report::print_panels(
      std::cout,
      "Fig. 1 | GPT3-1T, 1D TP, 16384 B200, NVS 8, b=4096, b_loc=1, PP=64",
      results);

  // The paper's takeaway: time is convex in TP with the minimum at nt=8.
  std::size_t best = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].result.feasible &&
        (!results[best].result.feasible ||
         results[i].result.iteration() < results[best].result.iteration())) {
      best = i;
    }
  }
  std::cout << "fastest: " << results[best].label << " ("
            << results[best].result.cfg.describe() << ")\n";
  report::write_results_csv("fig1.csv", results);
  std::cout << "series written to fig1.csv\n";
  return 0;
}
