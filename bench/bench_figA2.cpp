// Reproduces paper Fig. A2: plain 2D TP configuration sweeps on 16384 B200
// with a 64-GPU NVS domain, global batch 4096.
//   (a) GPT3-1T: (nt,np) = (32,1) then (8,128), varying the (n1,n2) split —
//       behaves like SUMMA but with much higher memory (shared weights and
//       activations), pushing the choice toward the large-PP block.
//   (b) ViT-64K: nt = 16 with np in {1, 16} — high- and low-PP
//       configurations contend; memory is sensitive to (n1, n2, np).

#include <iostream>

#include "hw/system.hpp"
#include "model/transformer.hpp"
#include "report/breakdown_report.hpp"
#include "search/search.hpp"

int main() {
  using namespace tfpe;
  const std::int64_t b = 4096;
  const hw::SystemConfig sys = hw::make_system(hw::GpuGeneration::B200, 64, 16384);

  {
    const model::TransformerConfig mdl = model::gpt3_1t();
    std::vector<report::LabeledResult> results;
    for (std::int64_t n1 : {32, 16, 8, 4, 2}) {
      parallel::ParallelConfig cfg;
      cfg.strategy = parallel::TpStrategy::TP2D;
      cfg.n1 = n1;
      cfg.n2 = 32 / n1;
      cfg.np = 1;
      cfg.nd = sys.n_gpus / 32;
      cfg.microbatches = 1;
      results.push_back({"(" + std::to_string(cfg.n1) + "," +
                             std::to_string(cfg.n2) + ",np=1)",
                         search::best_placement(mdl, sys, cfg, b)});
    }
    for (std::int64_t n1 : {8, 4, 2, 1}) {
      parallel::ParallelConfig cfg;
      cfg.strategy = parallel::TpStrategy::TP2D;
      cfg.n1 = n1;
      cfg.n2 = 8 / n1;
      cfg.np = 128;
      cfg.nd = sys.n_gpus / 8 / 128;
      cfg.microbatches = b / cfg.nd;
      results.push_back({"(" + std::to_string(cfg.n1) + "," +
                             std::to_string(cfg.n2) + ",np=128)",
                         search::best_placement(mdl, sys, cfg, b)});
    }
    report::print_panels(std::cout,
                         "Fig. A2a | GPT3-1T, 2D TP, 16384 B200, NVS 64",
                         results);
    report::write_results_csv("figA2a.csv", results);
  }

  {
    const model::TransformerConfig mdl = model::vit_64k();
    const hw::SystemConfig vsys = hw::make_system(hw::GpuGeneration::B200, 64, 4096);
    std::vector<report::LabeledResult> results;
    for (std::int64_t np : {std::int64_t{1}, std::int64_t{16}}) {
      for (std::int64_t n1 : {16, 8, 4, 2, 1}) {
        parallel::ParallelConfig cfg;
        cfg.strategy = parallel::TpStrategy::TP2D;
        cfg.n1 = n1;
        cfg.n2 = 16 / n1;
        cfg.np = np;
        cfg.nd = vsys.n_gpus / 16 / np;
        if (b % cfg.nd) continue;
        cfg.microbatches = b / cfg.nd;  // microbatch size 1
        results.push_back({"(" + std::to_string(cfg.n1) + "," +
                               std::to_string(cfg.n2) + ",np=" +
                               std::to_string(np) + ")",
                           search::best_placement(mdl, vsys, cfg, b)});
      }
    }
    report::print_panels(std::cout,
                         "Fig. A2b | ViT-64K, 2D TP, 4096 B200, NVS 64",
                         results);
    report::write_results_csv("figA2b.csv", results);
  }
  return 0;
}
